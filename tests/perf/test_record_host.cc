/**
 * @file
 * Host block of the run-record schema (v5): a record carrying a
 * HostSummary survives encodeRunRecord() -> parseRunRecord() field
 * for field; summarizeHost() condenses a profiler snapshot
 * faithfully; and records from the older v2/v3/v4 schemas keep
 * parsing with the block absent-but-valid.
 */

#include <gtest/gtest.h>

#include "perf/manifest.hh"
#include "perf/record.hh"
#include "telemetry/host_prof.hh"

using namespace alphapim;
using namespace alphapim::perf;

namespace
{

HostSummary
sampleHost()
{
    HostSummary h;
    h.totalSeconds = 2.125;
    h.partitionBuildSeconds = 0.25;
    h.traceRecordSeconds = 0.5;
    h.replaySeconds = 0.875;
    h.profileFoldSeconds = 0.125;
    h.transferModelSeconds = 0.0625;
    h.hostMergeSeconds = 0.1875;
    h.analysisSeconds = 0.125;
    h.replaySlotsPerSec = 1.6e8;
    h.traceRecordsPerSec = 4.2e7;
    h.replaySlots = 140000000;
    h.traceRecords = 21000000;
    h.slowdownFactor = 96500.0;
    h.peakRssBytes = 268435456;
    h.taskletTraceBytesPeak = 8388608;
    h.tracerBytes = 1048576;
    h.metricsBytes = 262144;
    return h;
}

RunKey
sampleKey()
{
    RunKey key;
    key.bench = "fig09";
    key.dataset = "e-En";
    key.variant = "spmv";
    key.dpus = 256;
    key.seed = 42;
    return key;
}

} // namespace

TEST(RunRecordHost, EncodeParseRoundTrip)
{
    const HostSummary h = sampleHost();
    core::PhaseTimes times;
    times.kernel = 0.0022;

    const std::string line =
        encodeRunRecord(currentManifest(), sampleKey(), 3, times,
                        nullptr, nullptr, 2.2, nullptr, nullptr, &h);

    RunRecord r;
    std::string error;
    ASSERT_TRUE(parseRunRecord(line, r, &error)) << error;
    ASSERT_TRUE(r.hasHost);
    const HostSummary &b = r.host;
    EXPECT_DOUBLE_EQ(b.totalSeconds, 2.125);
    EXPECT_DOUBLE_EQ(b.partitionBuildSeconds, 0.25);
    EXPECT_DOUBLE_EQ(b.traceRecordSeconds, 0.5);
    EXPECT_DOUBLE_EQ(b.replaySeconds, 0.875);
    EXPECT_DOUBLE_EQ(b.profileFoldSeconds, 0.125);
    EXPECT_DOUBLE_EQ(b.transferModelSeconds, 0.0625);
    EXPECT_DOUBLE_EQ(b.hostMergeSeconds, 0.1875);
    EXPECT_DOUBLE_EQ(b.analysisSeconds, 0.125);
    EXPECT_DOUBLE_EQ(b.replaySlotsPerSec, 1.6e8);
    EXPECT_DOUBLE_EQ(b.traceRecordsPerSec, 4.2e7);
    EXPECT_EQ(b.replaySlots, 140000000u);
    EXPECT_EQ(b.traceRecords, 21000000u);
    EXPECT_DOUBLE_EQ(b.slowdownFactor, 96500.0);
    EXPECT_EQ(b.peakRssBytes, 268435456u);
    EXPECT_EQ(b.taskletTraceBytesPeak, 8388608u);
    EXPECT_EQ(b.tracerBytes, 1048576u);
    EXPECT_EQ(b.metricsBytes, 262144u);
}

TEST(RunRecordHost, OmittedBlockStaysAbsent)
{
    core::PhaseTimes times;
    times.kernel = 0.25;
    const std::string line =
        encodeRunRecord(currentManifest(), sampleKey(), 0, times,
                        nullptr, nullptr, -1.0, nullptr, nullptr,
                        nullptr);
    RunRecord r;
    std::string error;
    ASSERT_TRUE(parseRunRecord(line, r, &error)) << error;
    EXPECT_FALSE(r.hasHost);
}

TEST(RunRecordHost, OlderSchemasParseWithoutTheBlock)
{
    // Hand-written lines as the older encoders emitted them: no host
    // object anywhere.
    const std::string v2 =
        "{\"schema\":\"alpha-pim-run-v2\",\"git_sha\":\"abc\","
        "\"bench\":\"fig09\",\"dataset\":\"e-En\","
        "\"variant\":\"spmv\",\"dpus\":256,\"seed\":42,"
        "\"times\":{\"load\":0.1,\"kernel\":0.4,"
        "\"retrieve\":0.08,\"merge\":0.02}}";
    const std::string v4 =
        "{\"schema\":\"alpha-pim-run-v4\",\"git_sha\":\"abc\","
        "\"bench\":\"fig09\",\"dataset\":\"e-En\","
        "\"variant\":\"spmv\",\"dpus\":256,\"seed\":42,"
        "\"times\":{\"load\":0.1,\"kernel\":0.4,"
        "\"retrieve\":0.08,\"merge\":0.02},"
        "\"imbalance\":{\"launches\":3,\"straggler_factor\":1.5,"
        "\"cycles_gini\":0.1,\"cycles_cov\":0.2,"
        "\"cycles_p99_over_mean\":1.3,\"nnz_gini\":0.1,"
        "\"nnz_max_over_mean\":1.4,\"straggler_kernel\":\"CSC-2D\","
        "\"straggler_dpu\":7,\"straggler_cycles_over_mean\":1.5,"
        "\"straggler_stall\":\"memory\","
        "\"straggler_stall_fraction\":0.5,"
        "\"straggler_nnz_over_mean\":1.4,\"kernel_seconds\":0.4,"
        "\"leveled_kernel_seconds\":0.3}}";

    RunRecord r2, r4;
    std::string error;
    ASSERT_TRUE(parseRunRecord(v2, r2, &error)) << error;
    EXPECT_FALSE(r2.hasHost);

    ASSERT_TRUE(parseRunRecord(v4, r4, &error)) << error;
    EXPECT_FALSE(r4.hasHost);
    ASSERT_TRUE(r4.hasImbalance);
    EXPECT_DOUBLE_EQ(r4.imbalance.stragglerFactor, 1.5);
}

TEST(RunRecordHost, SummarizeCopiesTheSnapshot)
{
    telemetry::HostProfile p;
    using telemetry::HostPhase;
    p.phaseSeconds[static_cast<unsigned>(
        HostPhase::PartitionBuild)] = 0.1;
    p.phaseSeconds[static_cast<unsigned>(HostPhase::TraceRecord)] =
        0.2;
    p.phaseSeconds[static_cast<unsigned>(HostPhase::Replay)] = 0.4;
    p.phaseSeconds[static_cast<unsigned>(HostPhase::ProfileFold)] =
        0.05;
    p.phaseSeconds[static_cast<unsigned>(HostPhase::TransferModel)] =
        0.03;
    p.phaseSeconds[static_cast<unsigned>(HostPhase::HostMerge)] =
        0.07;
    p.phaseSeconds[static_cast<unsigned>(HostPhase::Analysis)] =
        0.15;
    p.totalSeconds = 1.0;
    p.replaySlots = 4000000;
    p.traceRecords = 800000;
    p.replaySlotsPerSec = 1e7;
    p.traceRecordsPerSec = 4e6;
    p.slowdownFactor = 50000.0;
    p.peakRssBytes = 123456789;
    p.taskletTraceBytesPeak = 4194304;
    p.tracerBytes = 65536;
    p.metricsBytes = 32768;

    const HostSummary s = summarizeHost(p);
    EXPECT_DOUBLE_EQ(s.totalSeconds, 1.0);
    EXPECT_DOUBLE_EQ(s.partitionBuildSeconds, 0.1);
    EXPECT_DOUBLE_EQ(s.traceRecordSeconds, 0.2);
    EXPECT_DOUBLE_EQ(s.replaySeconds, 0.4);
    EXPECT_DOUBLE_EQ(s.profileFoldSeconds, 0.05);
    EXPECT_DOUBLE_EQ(s.transferModelSeconds, 0.03);
    EXPECT_DOUBLE_EQ(s.hostMergeSeconds, 0.07);
    EXPECT_DOUBLE_EQ(s.analysisSeconds, 0.15);
    EXPECT_DOUBLE_EQ(s.replaySlotsPerSec, 1e7);
    EXPECT_DOUBLE_EQ(s.traceRecordsPerSec, 4e6);
    EXPECT_EQ(s.replaySlots, 4000000u);
    EXPECT_EQ(s.traceRecords, 800000u);
    EXPECT_DOUBLE_EQ(s.slowdownFactor, 50000.0);
    EXPECT_EQ(s.peakRssBytes, 123456789u);
    EXPECT_EQ(s.taskletTraceBytesPeak, 4194304u);
    EXPECT_EQ(s.tracerBytes, 65536u);
    EXPECT_EQ(s.metricsBytes, 32768u);
}
