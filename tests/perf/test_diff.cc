/**
 * @file
 * Bench differ: pairing by run identity, exact-compare verdicts for
 * deterministic metrics, bootstrap-CI verdicts for wall-clock, the
 * fold into a per-pair verdict, and the append-footgun warnings.
 */

#include <gtest/gtest.h>

#include "perf/diff.hh"

using namespace alphapim;
using namespace alphapim::perf;

namespace
{

RunRecord
makeRecord(const std::string &variant, double kernel_s,
           double load_s = 0.1, double wall = -1.0)
{
    RunRecord r;
    r.manifest.schema = kRunSchema;
    r.manifest.gitSha = "abc123";
    r.key.bench = "fig07";
    r.key.dataset = "e-En";
    r.key.variant = variant;
    r.key.dpus = 256;
    r.key.seed = 42;
    r.iterations = 5;
    r.times.load = load_s;
    r.times.kernel = kernel_s;
    r.times.retrieve = 0.05;
    r.times.merge = 0.01;
    r.wallSeconds = wall;
    return r;
}

RecordSet
makeSet(std::vector<RunRecord> records)
{
    RecordSet set;
    set.path = "<test>";
    set.records = std::move(records);
    set.schemas = {kRunSchema};
    set.gitShas = {"abc123"};
    return set;
}

const PairDiff *
findPair(const DiffReport &report, const std::string &variant)
{
    for (const PairDiff &p : report.pairs)
        if (p.key.variant == variant)
            return &p;
    return nullptr;
}

const MetricDelta *
findMetric(const PairDiff &pair, const std::string &metric)
{
    for (const MetricDelta &m : pair.metrics)
        if (m.metric == metric)
            return &m;
    return nullptr;
}

} // namespace

TEST(DiffPairing, UnpairedRunsAreReportedNotCompared)
{
    const auto olds =
        makeSet({makeRecord("A", 0.5), makeRecord("B", 0.5)});
    const auto news =
        makeSet({makeRecord("B", 0.5), makeRecord("C", 0.5)});
    const DiffReport report =
        diffRecordSets(olds, news, DiffOptions{});

    ASSERT_EQ(report.pairs.size(), 3u);
    EXPECT_EQ(findPair(report, "A")->verdict, Verdict::OldOnly);
    EXPECT_EQ(findPair(report, "B")->verdict, Verdict::Equal);
    EXPECT_EQ(findPair(report, "C")->verdict, Verdict::NewOnly);
    EXPECT_EQ(report.oldOnly, 1u);
    EXPECT_EQ(report.newOnly, 1u);
    EXPECT_EQ(report.equal, 1u);
    EXPECT_FALSE(report.hasRegressions());
}

TEST(DiffPairing, DifferentDpusOrSeedNeverPair)
{
    RunRecord o = makeRecord("A", 0.5);
    RunRecord n = makeRecord("A", 0.5);
    n.key.dpus = 512; // same bench/dataset/variant, other machine size
    const DiffReport report = diffRecordSets(
        makeSet({o}), makeSet({n}), DiffOptions{});
    EXPECT_EQ(report.oldOnly, 1u);
    EXPECT_EQ(report.newOnly, 1u);
}

TEST(DiffVerdicts, IdenticalRecordsCompareEqual)
{
    const auto olds = makeSet({makeRecord("A", 0.5)});
    const auto news = makeSet({makeRecord("A", 0.5)});
    const DiffReport report =
        diffRecordSets(olds, news, DiffOptions{});
    EXPECT_EQ(report.equal, 1u);
    EXPECT_FALSE(report.hasRegressions());
}

TEST(DiffVerdicts, SubEpsilonDifferenceIsEqual)
{
    const auto olds = makeSet({makeRecord("A", 0.5)});
    const auto news = makeSet({makeRecord("A", 0.5 + 1e-13)});
    const DiffReport report =
        diffRecordSets(olds, news, DiffOptions{});
    EXPECT_EQ(report.equal, 1u);
}

TEST(DiffVerdicts, AnyDeterministicDriftIsFlagged)
{
    // +1% kernel time: below the 2% gate but NOT silently equal --
    // the model is deterministic, so any drift is a real change.
    const auto olds = makeSet({makeRecord("A", 0.5)});
    const auto news = makeSet({makeRecord("A", 0.505)});
    const DiffReport report =
        diffRecordSets(olds, news, DiffOptions{});
    const PairDiff *pair = findPair(report, "A");
    ASSERT_NE(pair, nullptr);
    EXPECT_EQ(pair->verdict, Verdict::Drifted);
    EXPECT_FALSE(report.hasRegressions());
}

TEST(DiffVerdicts, TotalTimeRegressionGates)
{
    const auto olds = makeSet({makeRecord("A", 0.5)});
    const auto news = makeSet({makeRecord("A", 0.6)});
    const DiffReport report =
        diffRecordSets(olds, news, DiffOptions{});
    const PairDiff *pair = findPair(report, "A");
    ASSERT_NE(pair, nullptr);
    EXPECT_EQ(pair->verdict, Verdict::Regressed);
    EXPECT_TRUE(report.hasRegressions());
    // A regressed pair carries its attribution.
    EXPECT_FALSE(pair->attribution.headline.empty());
    const MetricDelta *total = findMetric(*pair, "times.total");
    ASSERT_NE(total, nullptr);
    EXPECT_EQ(total->verdict, Verdict::Regressed);
}

TEST(DiffVerdicts, StragglerFactorRegressionGates)
{
    // A launch that got more skewed gates even when the total model
    // time held (e.g. the extra straggler cycles hid under a
    // shrunken transfer phase).
    RunRecord o = makeRecord("A", 0.5);
    o.hasImbalance = true;
    o.imbalance.stragglerFactor = 1.10;
    RunRecord n = o;
    n.imbalance.stragglerFactor = 2.40;
    const DiffReport report = diffRecordSets(
        makeSet({o}), makeSet({n}), DiffOptions{});
    const PairDiff *pair = findPair(report, "A");
    ASSERT_NE(pair, nullptr);
    EXPECT_EQ(pair->verdict, Verdict::Regressed);
    EXPECT_TRUE(report.hasRegressions());
    const MetricDelta *sf =
        findMetric(*pair, "imbalance.straggler_factor");
    ASSERT_NE(sf, nullptr);
    EXPECT_EQ(sf->verdict, Verdict::Regressed);
}

TEST(DiffVerdicts, StragglerFactorDriftStaysAdvisory)
{
    // Sub-threshold straggler wiggle: Drifted, never a gate.
    RunRecord o = makeRecord("A", 0.5);
    o.hasImbalance = true;
    o.imbalance.stragglerFactor = 1.10;
    RunRecord n = o;
    n.imbalance.stragglerFactor = 1.11;
    const DiffReport report = diffRecordSets(
        makeSet({o}), makeSet({n}), DiffOptions{});
    EXPECT_EQ(findPair(report, "A")->verdict, Verdict::Drifted);
    EXPECT_FALSE(report.hasRegressions());
}

TEST(DiffVerdicts, TotalTimeImprovementIsNotARegression)
{
    const auto olds = makeSet({makeRecord("A", 0.6)});
    const auto news = makeSet({makeRecord("A", 0.5)});
    const DiffReport report =
        diffRecordSets(olds, news, DiffOptions{});
    EXPECT_EQ(findPair(report, "A")->verdict, Verdict::Improved);
    EXPECT_FALSE(report.hasRegressions());
}

TEST(DiffWallClock, SingleSampleMakesNoStatisticalClaim)
{
    const auto olds = makeSet({makeRecord("A", 0.5, 0.1, 1.0)});
    const auto news = makeSet({makeRecord("A", 0.5, 0.1, 9.0)});
    const DiffReport report =
        diffRecordSets(olds, news, DiffOptions{});
    const PairDiff *pair = findPair(report, "A");
    ASSERT_NE(pair, nullptr);
    const MetricDelta *wall = findMetric(*pair, "wall_seconds");
    ASSERT_NE(wall, nullptr);
    EXPECT_TRUE(wall->noisy);
    EXPECT_EQ(wall->verdict, Verdict::Equal);
    EXPECT_EQ(pair->verdict, Verdict::Equal);
}

TEST(DiffWallClock, ClearShiftIsDetectedButAdvisoryByDefault)
{
    // Three samples per side, tight around distinct means: the CI
    // of the mean difference excludes zero.
    std::vector<RunRecord> olds, news;
    for (double w : {1.00, 1.01, 0.99})
        olds.push_back(makeRecord("A", 0.5, 0.1, w));
    for (double w : {2.00, 2.02, 1.98})
        news.push_back(makeRecord("A", 0.5, 0.1, w));
    const DiffReport report = diffRecordSets(
        makeSet(std::move(olds)), makeSet(std::move(news)),
        DiffOptions{});
    const PairDiff *pair = findPair(report, "A");
    ASSERT_NE(pair, nullptr);
    const MetricDelta *wall = findMetric(*pair, "wall_seconds");
    ASSERT_NE(wall, nullptr);
    EXPECT_EQ(wall->verdict, Verdict::Regressed);
    EXPECT_GT(wall->ciLow, 0.0);
    // ...but wall-clock is advisory unless --wall-gate:
    EXPECT_EQ(pair->verdict, Verdict::Equal);
    EXPECT_FALSE(report.hasRegressions());
}

TEST(DiffWallClock, WallGateOptionPromotesTheRegression)
{
    std::vector<RunRecord> olds, news;
    for (double w : {1.00, 1.01, 0.99})
        olds.push_back(makeRecord("A", 0.5, 0.1, w));
    for (double w : {2.00, 2.02, 1.98})
        news.push_back(makeRecord("A", 0.5, 0.1, w));
    DiffOptions opt;
    opt.wallClockGate = true;
    const DiffReport report = diffRecordSets(
        makeSet(std::move(olds)), makeSet(std::move(news)), opt);
    EXPECT_EQ(findPair(report, "A")->verdict, Verdict::Regressed);
    EXPECT_TRUE(report.hasRegressions());
}

namespace
{

/** Attach a host block with one replay-dominated shape. */
RunRecord
withHost(RunRecord r, double total_s, double replay_s,
         double slots_per_sec)
{
    r.hasHost = true;
    r.host.totalSeconds = total_s;
    r.host.replaySeconds = replay_s;
    r.host.traceRecordSeconds = total_s - replay_s;
    r.host.replaySlotsPerSec = slots_per_sec;
    r.host.traceRecordsPerSec = 1e6;
    r.host.replaySlots = 1000000;
    r.host.traceRecords = 200000;
    r.host.slowdownFactor = total_s / 0.001;
    return r;
}

} // namespace

TEST(DiffHost, SingleSampleMakesNoStatisticalClaim)
{
    const auto olds =
        makeSet({withHost(makeRecord("A", 0.5), 1.0, 0.7, 2e6)});
    const auto news =
        makeSet({withHost(makeRecord("A", 0.5), 9.0, 8.0, 2e5)});
    const DiffReport report =
        diffRecordSets(olds, news, DiffOptions{});
    const PairDiff *pair = findPair(report, "A");
    ASSERT_NE(pair, nullptr);
    const MetricDelta *total =
        findMetric(*pair, "host.total_seconds");
    ASSERT_NE(total, nullptr);
    EXPECT_TRUE(total->noisy);
    EXPECT_EQ(total->verdict, Verdict::Equal);
    EXPECT_EQ(pair->verdict, Verdict::Equal);
}

TEST(DiffHost, ClearShiftIsDetectedButAdvisoryByDefault)
{
    std::vector<RunRecord> olds, news;
    for (double t : {1.00, 1.01, 0.99})
        olds.push_back(
            withHost(makeRecord("A", 0.5), t, 0.7 * t, 2e6));
    for (double t : {2.00, 2.02, 1.98})
        news.push_back(
            withHost(makeRecord("A", 0.5), t, 0.7 * t, 1e6));
    const DiffReport report = diffRecordSets(
        makeSet(std::move(olds)), makeSet(std::move(news)),
        DiffOptions{});
    const PairDiff *pair = findPair(report, "A");
    ASSERT_NE(pair, nullptr);
    const MetricDelta *total =
        findMetric(*pair, "host.total_seconds");
    ASSERT_NE(total, nullptr);
    EXPECT_EQ(total->verdict, Verdict::Regressed);
    // ...but host metrics are advisory unless --host-gate:
    EXPECT_EQ(pair->verdict, Verdict::Equal);
    EXPECT_FALSE(report.hasRegressions());
}

TEST(DiffHost, HostGateOptionPromotesTheRegression)
{
    std::vector<RunRecord> olds, news;
    for (double t : {1.00, 1.01, 0.99})
        olds.push_back(
            withHost(makeRecord("A", 0.5), t, 0.7 * t, 2e6));
    for (double t : {2.00, 2.02, 1.98})
        news.push_back(
            withHost(makeRecord("A", 0.5), t, 0.7 * t, 1e6));
    DiffOptions opt;
    opt.hostGate = true;
    const DiffReport report = diffRecordSets(
        makeSet(std::move(olds)), makeSet(std::move(news)), opt);
    EXPECT_EQ(findPair(report, "A")->verdict, Verdict::Regressed);
    EXPECT_TRUE(report.hasRegressions());
}

TEST(DiffHost, ThroughputDropIsTheRegressionDirection)
{
    // Replay throughput is higher-is-better: a clear DROP must be a
    // regression, and a clear RISE an improvement -- the opposite
    // polarity of the seconds metrics.
    std::vector<RunRecord> olds, news;
    for (double j : {0.99, 1.0, 1.01}) {
        olds.push_back(
            withHost(makeRecord("A", 0.5), 1.0, 0.7, 2e6 * j));
        news.push_back(
            withHost(makeRecord("A", 0.5), 1.0, 0.7, 1e6 * j));
    }
    const DiffReport report = diffRecordSets(
        makeSet(std::move(olds)), makeSet(std::move(news)),
        DiffOptions{});
    const PairDiff *pair = findPair(report, "A");
    ASSERT_NE(pair, nullptr);
    const MetricDelta *tput =
        findMetric(*pair, "host.replay_slots_per_sec");
    ASSERT_NE(tput, nullptr);
    EXPECT_EQ(tput->verdict, Verdict::Regressed);

    // And the reverse shift reads as Improved, not Regressed.
    std::vector<RunRecord> olds2, news2;
    for (double j : {0.99, 1.0, 1.01}) {
        olds2.push_back(
            withHost(makeRecord("A", 0.5), 1.0, 0.7, 1e6 * j));
        news2.push_back(
            withHost(makeRecord("A", 0.5), 1.0, 0.7, 2e6 * j));
    }
    const DiffReport report2 = diffRecordSets(
        makeSet(std::move(olds2)), makeSet(std::move(news2)),
        DiffOptions{});
    const MetricDelta *tput2 = findMetric(
        *findPair(report2, "A"), "host.replay_slots_per_sec");
    ASSERT_NE(tput2, nullptr);
    EXPECT_EQ(tput2->verdict, Verdict::Improved);
}

TEST(DiffHost, RecordsWithoutHostBlocksCompareClean)
{
    const auto olds = makeSet({makeRecord("A", 0.5)});
    const auto news = makeSet({makeRecord("A", 0.5)});
    DiffOptions opt;
    opt.hostGate = true;
    const DiffReport report = diffRecordSets(olds, news, opt);
    const PairDiff *pair = findPair(report, "A");
    ASSERT_NE(pair, nullptr);
    EXPECT_EQ(findMetric(*pair, "host.total_seconds"), nullptr);
    EXPECT_EQ(pair->verdict, Verdict::Equal);
}

TEST(DiffBootstrap, DeterministicAndSane)
{
    const std::vector<double> olds = {1.0, 1.1, 0.9, 1.05, 0.95};
    const std::vector<double> news = {2.0, 2.1, 1.9, 2.05, 1.95};
    double lo1, hi1, lo2, hi2;
    bootstrapMeanDiffCI(olds, news, 0.95, 500, 7, lo1, hi1);
    bootstrapMeanDiffCI(olds, news, 0.95, 500, 7, lo2, hi2);
    EXPECT_DOUBLE_EQ(lo1, lo2); // seeded: bit-identical reruns
    EXPECT_DOUBLE_EQ(hi1, hi2);
    EXPECT_GT(lo1, 0.5); // true shift is 1.0
    EXPECT_LT(hi1, 1.5);
    EXPECT_LT(lo1, hi1);
}

TEST(DiffWarnings, MixedShaFilesWarn)
{
    RunRecord a = makeRecord("A", 0.5);
    RunRecord b = makeRecord("B", 0.5);
    b.manifest.gitSha = "def456"; // appended across builds
    RecordSet olds = makeSet({a, b});
    olds.gitShas = {"abc123", "def456"};
    const DiffReport report = diffRecordSets(
        olds, makeSet({makeRecord("A", 0.5)}), DiffOptions{});
    ASSERT_FALSE(report.warnings.empty());
    EXPECT_NE(report.warnings[0].find("git revisions"),
              std::string::npos);
}

TEST(DiffWarnings, FingerprintDriftWarnsPerKey)
{
    RunRecord o = makeRecord("A", 0.5);
    o.manifest.datasetFingerprint = 0x1111;
    RunRecord n = makeRecord("A", 0.5);
    n.manifest.datasetFingerprint = 0x2222;
    const DiffReport report = diffRecordSets(
        makeSet({o}), makeSet({n}), DiffOptions{});
    bool saw = false;
    for (const std::string &w : report.warnings)
        saw = saw ||
              w.find("dataset fingerprint") != std::string::npos;
    EXPECT_TRUE(saw);
}

TEST(DiffWarnings, SchemaMismatchAcrossSetsWarns)
{
    RunRecord o = makeRecord("A", 0.5);
    o.manifest.schema = ""; // legacy v1 baseline
    RecordSet olds = makeSet({o});
    olds.schemas = {""};
    const DiffReport report = diffRecordSets(
        olds, makeSet({makeRecord("A", 0.5)}), DiffOptions{});
    bool saw = false;
    for (const std::string &w : report.warnings)
        saw = saw || w.find("schema mismatch") != std::string::npos;
    EXPECT_TRUE(saw);
}

TEST(DiffReporting, RenderNamesVerdictAndJsonParses)
{
    const auto olds = makeSet({makeRecord("A", 0.5)});
    const auto news = makeSet({makeRecord("A", 0.7)});
    const DiffOptions opt;
    const DiffReport report = diffRecordSets(olds, news, opt);
    const std::string text = renderReport(report, opt);
    EXPECT_NE(text.find("verdict: REGRESSED"), std::string::npos);
    EXPECT_NE(text.find("[regressed]"), std::string::npos);

    telemetry::JsonValue doc;
    std::string error;
    ASSERT_TRUE(
        telemetry::JsonValue::parse(reportJson(report), doc, &error))
        << error;
    EXPECT_DOUBLE_EQ(doc.find("regressed")->asNumber(), 1.0);
}
