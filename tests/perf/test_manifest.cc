/**
 * @file
 * Manifest and run-record round-trips: manifest fields written with
 * writeManifestFields() parse back identically via
 * parseManifestFields(); a full record survives
 * encodeRunRecord() -> parseRunRecord() with every measurement
 * intact; legacy (pre-manifest) records still load.
 */

#include <gtest/gtest.h>

#include "perf/build_info.hh"
#include "perf/manifest.hh"
#include "perf/record.hh"
#include "telemetry/json.hh"
#include "upmem/profile.hh"

using namespace alphapim;
using namespace alphapim::perf;

namespace
{

RunManifest
sampleManifest()
{
    RunManifest m;
    m.schema = kRunSchema;
    m.gitSha = "0123abcd+dirty";
    m.buildType = "Release";
    m.buildFlags = "asan";
    m.datasetFingerprint = 0xf862f1803618d855ull;
    m.addConfig("dpus", std::uint64_t{256});
    m.addConfig("scale", 0.25);
    m.addConfig("quick", true);
    m.addConfigString("strategy", "adaptive");
    return m;
}

} // namespace

TEST(Manifest, JsonRoundTrip)
{
    const RunManifest m = sampleManifest();
    telemetry::JsonWriter w;
    w.beginObject();
    writeManifestFields(w, m);
    w.endObject();

    telemetry::JsonValue parsed;
    std::string error;
    ASSERT_TRUE(telemetry::JsonValue::parse(w.str(), parsed, &error))
        << error;
    const RunManifest back = parseManifestFields(parsed);

    EXPECT_EQ(back.schema, m.schema);
    EXPECT_EQ(back.gitSha, m.gitSha);
    EXPECT_EQ(back.buildType, m.buildType);
    EXPECT_EQ(back.buildFlags, m.buildFlags);
    EXPECT_EQ(back.datasetFingerprint, m.datasetFingerprint);
    ASSERT_EQ(back.config.size(), m.config.size());
    for (std::size_t i = 0; i < m.config.size(); ++i) {
        EXPECT_EQ(back.config[i].first, m.config[i].first);
        EXPECT_EQ(back.config[i].second, m.config[i].second);
    }
}

TEST(Manifest, CurrentManifestCarriesBuildInfo)
{
    const RunManifest m = currentManifest();
    EXPECT_EQ(m.schema, kRunSchema);
    EXPECT_EQ(m.gitSha, gitSha());
    EXPECT_EQ(m.buildType, buildType());
    EXPECT_FALSE(m.gitSha.empty());
}

TEST(RunRecord, EncodeParseRoundTrip)
{
    const RunManifest m = sampleManifest();
    RunKey key;
    key.bench = "fig07";
    key.dataset = "e-En";
    key.variant = "BFS/adaptive";
    key.dpus = 256;
    key.seed = 42;

    core::PhaseTimes times;
    times.load = 0.125;
    times.kernel = 0.5;
    times.retrieve = 0.0625;
    times.merge = 0.03125;

    upmem::LaunchProfile profile;
    profile.aggregate.totalCycles = 4096;
    profile.aggregate.issuedCycles = 1024;
    profile.aggregate.stallCycles[static_cast<std::size_t>(
        upmem::StallReason::Memory)] = 2048;
    profile.aggregate.stallCycles[static_cast<std::size_t>(
        upmem::StallReason::Revolver)] = 1024;
    profile.activeDpus = 8;

    XferCounts xfer;
    xfer.scatters = 3;
    xfer.scatterBytes = 1536;
    xfer.gathers = 2;
    xfer.gatherBytes = 512;
    xfer.broadcasts = 1;
    xfer.broadcastBytes = 4096;

    const std::string line = encodeRunRecord(
        m, key, 17, times, &profile, &xfer, 1.5);

    RunRecord r;
    std::string error;
    ASSERT_TRUE(parseRunRecord(line, r, &error)) << error;

    EXPECT_EQ(r.manifest.schema, m.schema);
    EXPECT_EQ(r.manifest.gitSha, m.gitSha);
    EXPECT_EQ(r.manifest.datasetFingerprint, m.datasetFingerprint);
    EXPECT_TRUE(r.key == key);
    EXPECT_EQ(r.key.str(), "fig07/e-En/BFS/adaptive@256dpus");
    EXPECT_EQ(r.iterations, 17u);
    EXPECT_DOUBLE_EQ(r.times.load, times.load);
    EXPECT_DOUBLE_EQ(r.times.kernel, times.kernel);
    EXPECT_DOUBLE_EQ(r.times.retrieve, times.retrieve);
    EXPECT_DOUBLE_EQ(r.times.merge, times.merge);
    EXPECT_DOUBLE_EQ(r.wallSeconds, 1.5);

    ASSERT_TRUE(r.hasProfile);
    EXPECT_EQ(r.totalCycles, 4096u);
    EXPECT_EQ(r.issuedCycles, 1024u);
    EXPECT_EQ(r.activeDpus, 8u);
    EXPECT_DOUBLE_EQ(r.stallFractions.at("memory"), 0.5);
    EXPECT_DOUBLE_EQ(r.stallFractions.at("revolver"), 0.25);

    ASSERT_TRUE(r.hasXfer);
    EXPECT_EQ(r.xfer.scatters, 3u);
    EXPECT_EQ(r.xfer.scatterBytes, 1536u);
    EXPECT_EQ(r.xfer.gathers, 2u);
    EXPECT_EQ(r.xfer.gatherBytes, 512u);
    EXPECT_EQ(r.xfer.broadcasts, 1u);
    EXPECT_EQ(r.xfer.broadcastBytes, 4096u);
}

TEST(RunRecord, OptionalSectionsStayAbsent)
{
    RunKey key;
    key.bench = "fig02";
    key.dataset = "as00";
    key.variant = "spmv-coo1d";
    key.dpus = 64;
    key.seed = 1;
    core::PhaseTimes times;
    times.kernel = 0.25;

    const std::string line = encodeRunRecord(
        currentManifest(), key, 0, times, nullptr, nullptr, -1.0);
    RunRecord r;
    std::string error;
    ASSERT_TRUE(parseRunRecord(line, r, &error)) << error;
    EXPECT_FALSE(r.hasProfile);
    EXPECT_FALSE(r.hasXfer);
    EXPECT_LT(r.wallSeconds, 0.0);
    EXPECT_EQ(r.iterations, 0u);
}

TEST(RunRecord, LegacyRecordWithoutManifestParses)
{
    // PR 1's records: identity + times only, no schema/git_sha.
    const std::string legacy =
        "{\"bench\":\"fig07\",\"dataset\":\"e-En\","
        "\"variant\":\"BFS\",\"dpus\":128,\"seed\":7,"
        "\"times\":{\"load\":0.1,\"kernel\":0.2,"
        "\"retrieve\":0.05,\"merge\":0.01}}";
    RunRecord r;
    std::string error;
    ASSERT_TRUE(parseRunRecord(legacy, r, &error)) << error;
    EXPECT_TRUE(r.manifest.schema.empty());
    EXPECT_EQ(r.key.dpus, 128u);
    EXPECT_DOUBLE_EQ(r.times.kernel, 0.2);
}

TEST(RunRecord, MalformedLinesReportErrors)
{
    RunRecord r;
    std::string error;
    EXPECT_FALSE(parseRunRecord("not json", r, &error));
    EXPECT_FALSE(error.empty());
    // An object with no identity at all is not a run record.
    error.clear();
    EXPECT_FALSE(parseRunRecord("{\"kind\":\"counter\"}", r, &error));
    EXPECT_FALSE(error.empty());
}
