/** @file Semiring algebra laws for every instance. */

#include <gtest/gtest.h>

#include "core/semiring.hh"

using namespace alphapim::core;

namespace
{

/** Check the semiring axioms on a sample of elements. */
template <Semiring S>
void
checkAxioms(const std::vector<typename S::Value> &elems)
{
    using V = typename S::Value;
    const V zero = S::zero();
    const V one = S::one();

    for (const V &a : elems) {
        // Additive identity and multiplicative identity/annihilator.
        EXPECT_EQ(S::add(a, zero), a);
        EXPECT_EQ(S::add(zero, a), a);
        EXPECT_EQ(S::mul(a, one), a);
        EXPECT_EQ(S::mul(one, a), a);
        EXPECT_EQ(S::mul(a, zero), zero);
        for (const V &b : elems) {
            // Commutativity of (+).
            EXPECT_EQ(S::add(a, b), S::add(b, a));
            for (const V &c : elems) {
                // Associativity and distributivity.
                EXPECT_EQ(S::add(S::add(a, b), c),
                          S::add(a, S::add(b, c)));
                EXPECT_EQ(S::mul(a, S::add(b, c)),
                          S::add(S::mul(a, b), S::mul(a, c)));
            }
        }
    }
    EXPECT_TRUE(S::isZero(zero));
    EXPECT_FALSE(S::isZero(one));
}

} // namespace

TEST(Semiring, BoolOrAndAxioms)
{
    checkAxioms<BoolOrAnd>({0u, 1u});
}

TEST(Semiring, MinPlusAxioms)
{
    checkAxioms<MinPlus>(
        {0.0f, 1.0f, 2.5f, 7.0f, MinPlus::zero()});
}

TEST(Semiring, PlusTimesAxiomsOnSmallIntegers)
{
    // Small integers keep float arithmetic exact.
    checkAxioms<PlusTimes>({0.0f, 1.0f, 2.0f, 3.0f});
}

TEST(Semiring, IntPlusTimesAxioms)
{
    checkAxioms<IntPlusTimes>({0u, 1u, 2u, 5u});
}

TEST(Semiring, IntPlusTimesUsesIntegerOps)
{
    using alphapim::upmem::OpClass;
    EXPECT_EQ(IntPlusTimes::addOp(), OpClass::IntAdd);
    EXPECT_EQ(IntPlusTimes::mulOp(), OpClass::IntMul);
    EXPECT_EQ(IntPlusTimes::fromMatrix(3.0f), 3u);
}

TEST(Semiring, MatrixValueConversion)
{
    EXPECT_EQ(BoolOrAnd::fromMatrix(7.5f), 1u);
    EXPECT_EQ(BoolOrAnd::fromMatrix(0.0f), 0u);
    EXPECT_FLOAT_EQ(MinPlus::fromMatrix(4.0f), 4.0f);
    EXPECT_FLOAT_EQ(PlusTimes::fromMatrix(0.25f), 0.25f);
}

TEST(Semiring, OpClassesMatchTable1)
{
    using alphapim::upmem::OpClass;
    // BFS: logical or/and; SSSP: min and +; PPR: + and x.
    EXPECT_EQ(BoolOrAnd::addOp(), OpClass::Logic);
    EXPECT_EQ(MinPlus::addOp(), OpClass::Compare);
    EXPECT_EQ(MinPlus::mulOp(), OpClass::FloatAdd);
    EXPECT_EQ(PlusTimes::addOp(), OpClass::FloatAdd);
    EXPECT_EQ(PlusTimes::mulOp(), OpClass::FloatMul);
}

TEST(Semiring, NamesAreDistinct)
{
    EXPECT_STRNE(BoolOrAnd::name(), MinPlus::name());
    EXPECT_STRNE(MinPlus::name(), PlusTimes::name());
}
