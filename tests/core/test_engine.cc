/** @file PimEngine strategy behaviour and result invariance. */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "core/engine.hh"
#include "core/reference.hh"
#include "sparse/generators.hh"

using namespace alphapim;
using namespace alphapim::core;

namespace
{

upmem::UpmemSystem
testSystem(unsigned dpus = 16)
{
    upmem::SystemConfig cfg;
    cfg.numDpus = dpus;
    cfg.dpu.tasklets = 8;
    return upmem::UpmemSystem(cfg);
}

sparse::CooMatrix<float>
testGraph(std::uint64_t seed = 3)
{
    Rng rng(seed);
    const auto list = sparse::generateScaleMatched(400, 10, 30, rng);
    return sparse::edgeListToSymmetricCoo(list);
}

sparse::SparseVector<std::uint32_t>
inputAtDensity(NodeId n, double density, std::uint64_t seed)
{
    Rng rng(seed);
    sparse::SparseVector<std::uint32_t> x(n);
    for (NodeId i = 0; i < n; ++i) {
        if (rng.nextBernoulli(density))
            x.append(i, 1u);
    }
    return x;
}

} // namespace

TEST(PimEngine, AdaptiveSwitchesOnDensity)
{
    const auto sys = testSystem();
    const auto a = testGraph();
    PimEngine<BoolOrAnd> engine(sys, a, 16, MxvStrategy::Adaptive,
                                0.30);
    const NodeId n = a.numRows();

    engine.multiply(inputAtDensity(n, 0.05, 1));
    EXPECT_FALSE(engine.lastUsedSpmv());
    engine.multiply(inputAtDensity(n, 0.80, 2));
    EXPECT_TRUE(engine.lastUsedSpmv());
    EXPECT_EQ(engine.spmspvLaunches(), 1u);
    EXPECT_EQ(engine.spmvLaunches(), 1u);
}

TEST(PimEngine, StrategiesAgreeOnResults)
{
    const auto sys = testSystem();
    const auto a = testGraph();
    const NodeId n = a.numRows();
    const auto x = inputAtDensity(n, 0.4, 5);

    PimEngine<BoolOrAnd> adaptive(sys, a, 16, MxvStrategy::Adaptive);
    PimEngine<BoolOrAnd> sparse_only(sys, a, 16,
                                     MxvStrategy::SpmspvOnly);
    PimEngine<BoolOrAnd> dense_only(sys, a, 16, MxvStrategy::SpmvOnly);

    const auto ya = adaptive.multiply(x).y;
    const auto ys = sparse_only.multiply(x).y;
    const auto yd = dense_only.multiply(x).y;
    const auto expected = referenceMxv<BoolOrAnd>(a, x);
    EXPECT_EQ(ya, expected);
    EXPECT_EQ(ys, expected);
    EXPECT_EQ(yd, expected);
}

TEST(PimEngine, ModelThresholdUsedWhenUnspecified)
{
    const auto sys = testSystem();
    const auto a = testGraph(); // scale-free corpus => 0.50
    PimEngine<BoolOrAnd> engine(sys, a, 16, MxvStrategy::Adaptive);
    EXPECT_DOUBLE_EQ(engine.switchThreshold(), 0.50);
}

TEST(PimEngine, SpmvOnlyNeverUsesSpmspv)
{
    const auto sys = testSystem();
    const auto a = testGraph();
    PimEngine<BoolOrAnd> engine(sys, a, 16, MxvStrategy::SpmvOnly);
    engine.multiply(inputAtDensity(a.numRows(), 0.01, 9));
    EXPECT_TRUE(engine.lastUsedSpmv());
    EXPECT_EQ(engine.spmspvLaunches(), 0u);
}

TEST(PimEngine, StrategyNames)
{
    EXPECT_STREQ(mxvStrategyName(MxvStrategy::Adaptive), "adaptive");
    EXPECT_STREQ(mxvStrategyName(MxvStrategy::SpmspvOnly),
                 "spmspv-only");
    EXPECT_STREQ(mxvStrategyName(MxvStrategy::SpmvOnly), "spmv-only");
}
