/**
 * @file
 * Characterization property sweeps: the directional claims the
 * paper's figures rest on, pinned as parameterized tests so model
 * changes cannot silently invert them.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "core/kernels.hh"
#include "sparse/generators.hh"

using namespace alphapim;
using namespace alphapim::core;

namespace
{

struct Fixture
{
    upmem::UpmemSystem sys;
    sparse::CooMatrix<float> graph;

    Fixture()
        : sys([] {
              upmem::SystemConfig cfg;
              cfg.numDpus = 64;
              return cfg;
          }())
    {
        Rng rng(17);
        graph = sparse::edgeListToSymmetricCoo(
            sparse::generateScaleMatched(4000, 10, 30, rng));
    }

    sparse::SparseVector<std::uint32_t>
    input(double density, std::uint64_t seed) const
    {
        Rng rng(seed);
        sparse::SparseVector<std::uint32_t> x(graph.numRows());
        for (NodeId i = 0; i < graph.numRows(); ++i) {
            if (rng.nextBernoulli(density))
                x.append(i, 1u);
        }
        if (x.nnz() == 0)
            x.append(0, 1u);
        return x;
    }
};

Fixture &
fixture()
{
    static Fixture f;
    return f;
}

} // namespace

TEST(Characterization, SpmspvTotalGrowsWithDensity)
{
    auto &f = fixture();
    const auto kernel = makeKernel<IntPlusTimes>(
        KernelVariant::SpmspvCsc2d, f.sys, f.graph, 64);
    double prev = 0.0;
    for (double d : {0.01, 0.05, 0.15, 0.40, 0.80}) {
        const double total = kernel->run(f.input(d, 1)).times.total();
        EXPECT_GT(total, prev * 0.95) << "density " << d;
        prev = total;
    }
}

TEST(Characterization, SpmvTotalInsensitiveToDensity)
{
    auto &f = fixture();
    const auto kernel = makeKernel<IntPlusTimes>(
        KernelVariant::SpmvDcoo2d, f.sys, f.graph, 64);
    const double sparse_total =
        kernel->run(f.input(0.01, 2)).times.total();
    const double dense_total =
        kernel->run(f.input(0.90, 3)).times.total();
    EXPECT_NEAR(dense_total, sparse_total, 0.15 * sparse_total);
}

TEST(Characterization, SpmspvBeatsSpmvAtLowDensity)
{
    auto &f = fixture();
    const auto spmspv = makeKernel<IntPlusTimes>(
        KernelVariant::SpmspvCsc2d, f.sys, f.graph, 64);
    const auto spmv = makeKernel<IntPlusTimes>(
        KernelVariant::SpmvDcoo2d, f.sys, f.graph, 64);
    const auto x = f.input(0.02, 4);
    EXPECT_LT(spmspv->run(x).times.total(),
              spmv->run(x).times.total());
}

TEST(Characterization, SpmvIssuesMoreArithmeticThanSpmspv)
{
    // Figure 11's second observation: SpMV processes every stored
    // nonzero regardless of input sparsity.
    auto &f = fixture();
    const auto spmspv = makeKernel<IntPlusTimes>(
        KernelVariant::SpmspvCsc2d, f.sys, f.graph, 64);
    const auto spmv = makeKernel<IntPlusTimes>(
        KernelVariant::SpmvDcoo2d, f.sys, f.graph, 64);
    const auto x = f.input(0.10, 5);
    using upmem::OpCategory;
    const auto a_spmspv =
        spmspv->run(x).profile.aggregate.instructionsInCategory(
            OpCategory::Arithmetic);
    const auto a_spmv =
        spmv->run(x).profile.aggregate.instructionsInCategory(
            OpCategory::Arithmetic);
    EXPECT_GT(a_spmv, a_spmspv);
}

TEST(Characterization, SpmvMemoryStallShareExceedsSpmspv)
{
    // Figure 9's third observation: input-driven irregular x reads.
    auto &f = fixture();
    const auto spmspv = makeKernel<IntPlusTimes>(
        KernelVariant::SpmspvCsc2d, f.sys, f.graph, 64);
    const auto spmv = makeKernel<IntPlusTimes>(
        KernelVariant::SpmvCoo1d, f.sys, f.graph, 64);
    const auto x = f.input(0.30, 6);
    using upmem::StallReason;
    const double m_spmspv =
        spmspv->run(x).profile.aggregate.stallFraction(
            StallReason::Memory);
    const double m_spmv =
        spmv->run(x).profile.aggregate.stallFraction(
            StallReason::Memory);
    EXPECT_GT(m_spmv, m_spmspv);
}

TEST(Characterization, ActiveThreadsRiseWithDensityForSpmspv)
{
    // Figure 10.
    auto &f = fixture();
    const auto kernel = makeKernel<IntPlusTimes>(
        KernelVariant::SpmspvCsc2d, f.sys, f.graph, 64);
    const double low =
        kernel->run(f.input(0.01, 7))
            .profile.aggregate.avgActiveThreads();
    const double high =
        kernel->run(f.input(0.60, 8))
            .profile.aggregate.avgActiveThreads();
    EXPECT_GT(high, low);
}

TEST(Characterization, SyncShareTracksContention)
{
    // Figure 11 deviation, pinned deliberately (see EXPERIMENTS.md):
    // in this model mutex spinning grows with the number of
    // concurrently active tasklets, so the sync share rises with
    // density; the paper attributes low-density contention to
    // shared-output hot spots instead and reports the opposite
    // slope. Either way sync is a visible, density-dependent share.
    auto &f = fixture();
    const auto kernel = makeKernel<IntPlusTimes>(
        KernelVariant::SpmspvCsc2d, f.sys, f.graph, 64);
    using upmem::OpCategory;
    auto sync_share = [&](double density, std::uint64_t seed) {
        const auto p =
            kernel->run(f.input(density, seed)).profile.aggregate;
        return static_cast<double>(
                   p.instructionsInCategory(OpCategory::Sync)) /
               static_cast<double>(p.totalInstructions());
    };
    const double low = sync_share(0.01, 9);
    const double high = sync_share(0.60, 10);
    EXPECT_GT(low, 0.005);
    EXPECT_GT(high, 0.005);
    EXPECT_GE(high, 0.8 * low);
}

TEST(Characterization, BroadcastLoadDominates1dSpmv)
{
    // Figure 2's driving effect.
    auto &f = fixture();
    const auto spmv1d = makeKernel<IntPlusTimes>(
        KernelVariant::SpmvCoo1d, f.sys, f.graph, 64);
    const auto r = spmv1d->run(f.input(1.0, 11));
    EXPECT_GT(r.times.load, r.times.kernel);
    EXPECT_GT(r.times.load, r.times.retrieve);
}
