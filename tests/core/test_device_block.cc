/** @file Device block builders: coverage, rebasing, ordering. */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "core/device_block.hh"
#include "sparse/generators.hh"

using namespace alphapim;
using namespace alphapim::core;

namespace
{

sparse::CooMatrix<float>
testMatrix(std::uint64_t seed = 2)
{
    Rng rng(seed);
    const auto list = sparse::generateErdosRenyi(200, 900, rng);
    const auto pattern = sparse::edgeListToSymmetricCoo(list);
    return sparse::assignSymmetricWeights(pattern, 1, 9, rng);
}

/** Sum of block nnz must equal the matrix nnz (no loss, no dup). */
std::size_t
totalNnz(const std::vector<DeviceBlock> &blocks)
{
    std::size_t total = 0;
    for (const auto &b : blocks)
        total += b.nnz();
    return total;
}

/** Rebuild global (row, col, val) triples from blocks and compare. */
std::multiset<std::tuple<NodeId, NodeId, float>>
globalEntries(const std::vector<DeviceBlock> &blocks)
{
    std::multiset<std::tuple<NodeId, NodeId, float>> entries;
    for (const auto &b : blocks) {
        for (std::size_t k = 0; k < b.nnz(); ++k) {
            entries.insert({b.rowBase + b.rowIdx[k],
                            b.colBase + b.colIdx[k], b.values[k]});
        }
    }
    return entries;
}

std::multiset<std::tuple<NodeId, NodeId, float>>
matrixEntries(const sparse::CooMatrix<float> &m)
{
    std::multiset<std::tuple<NodeId, NodeId, float>> entries;
    for (std::size_t k = 0; k < m.nnz(); ++k)
        entries.insert({m.rowAt(k), m.colAt(k), m.valueAt(k)});
    return entries;
}

} // namespace

TEST(DeviceBlocks, RowBlocksPreserveEveryEntry)
{
    const auto m = testMatrix();
    const auto blocks = buildRowBlocks(m, makeRowPartition(m, 9),
                                       BlockOrder::RowMajor);
    EXPECT_EQ(totalNnz(blocks), m.nnz());
    EXPECT_EQ(globalEntries(blocks), matrixEntries(m));
}

TEST(DeviceBlocks, ColBlocksPreserveEveryEntry)
{
    const auto m = testMatrix();
    const auto blocks = buildColBlocks(m, makeColPartition(m, 6));
    EXPECT_EQ(totalNnz(blocks), m.nnz());
    EXPECT_EQ(globalEntries(blocks), matrixEntries(m));
}

TEST(DeviceBlocks, GridBlocksPreserveEveryEntry)
{
    const auto m = testMatrix();
    const auto grid = makeGrid2d(m, 12);
    const auto blocks = buildGridBlocks(m, grid, BlockOrder::ColMajor);
    EXPECT_EQ(blocks.size(), 12u);
    EXPECT_EQ(totalNnz(blocks), m.nnz());
    EXPECT_EQ(globalEntries(blocks), matrixEntries(m));
}

TEST(DeviceBlocks, NnzSlicesAreBalanced)
{
    const auto m = testMatrix();
    const auto blocks = buildNnzSlices(m, 10);
    EXPECT_EQ(totalNnz(blocks), m.nnz());
    EXPECT_EQ(globalEntries(blocks), matrixEntries(m));
    for (const auto &b : blocks) {
        EXPECT_LE(b.nnz(), m.nnz() / 10 + 1);
        EXPECT_GE(b.nnz(), m.nnz() / 10);
    }
}

TEST(DeviceBlocks, ColMajorOrderingHolds)
{
    const auto m = testMatrix();
    const auto blocks = buildColBlocks(m, makeColPartition(m, 4));
    for (const auto &b : blocks) {
        for (std::size_t k = 0; k + 1 < b.nnz(); ++k) {
            const bool ordered =
                b.colIdx[k] < b.colIdx[k + 1] ||
                (b.colIdx[k] == b.colIdx[k + 1] &&
                 b.rowIdx[k] <= b.rowIdx[k + 1]);
            EXPECT_TRUE(ordered);
        }
    }
}

TEST(DeviceBlocks, ColRangeFindsColumns)
{
    const auto m = testMatrix();
    const auto blocks = buildColBlocks(m, makeColPartition(m, 4));
    for (const auto &b : blocks) {
        for (NodeId c = 0; c < b.cols; ++c) {
            const auto [first, last] = b.colRange(c);
            for (std::size_t k = first; k < last; ++k)
                EXPECT_EQ(b.colIdx[k], c);
            if (first > 0) {
                EXPECT_LT(b.colIdx[first - 1], c);
            }
            if (last < b.nnz()) {
                EXPECT_GT(b.colIdx[last], c);
            }
        }
    }
}

TEST(DeviceBlocks, MramBytesAccountsColPtr)
{
    DeviceBlock row_block;
    row_block.order = BlockOrder::RowMajor;
    row_block.cols = 100;
    DeviceBlock col_block;
    col_block.order = BlockOrder::ColMajor;
    col_block.cols = 100;
    EXPECT_GT(col_block.mramBytes(), row_block.mramBytes());
}
