/** @file Partitioner coverage, balance, and grid factorization. */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "core/partition.hh"
#include "sparse/generators.hh"

using namespace alphapim;
using namespace alphapim::core;

namespace
{

sparse::CooMatrix<float>
testMatrix(std::uint64_t seed = 1)
{
    Rng rng(seed);
    const auto list = sparse::generateScaleMatched(500, 8.0, 20.0, rng);
    return sparse::edgeListToSymmetricCoo(list);
}

} // namespace

TEST(Partition1dTest, CoversExtentContiguously)
{
    const auto m = testMatrix();
    const auto part = makeRowPartition(m, 7);
    EXPECT_EQ(part.parts(), 7u);
    EXPECT_EQ(part.begin(0), 0u);
    EXPECT_EQ(part.end(6), m.numRows());
    for (unsigned p = 0; p + 1 < 7; ++p)
        EXPECT_EQ(part.end(p), part.begin(p + 1));
}

TEST(Partition1dTest, RangeOfIsConsistent)
{
    const auto m = testMatrix();
    const auto part = makeRowPartition(m, 13);
    for (NodeId i = 0; i < m.numRows(); ++i) {
        const unsigned p = part.rangeOf(i);
        EXPECT_GE(i, part.begin(p));
        EXPECT_LT(i, part.end(p));
    }
}

TEST(Partition1dTest, BalancedByWeight)
{
    const auto m = testMatrix();
    const auto weights = rowWeights(m);
    const unsigned parts = 8;
    const auto part = balancedPartition(weights, parts);
    EdgeId total = 0;
    for (auto w : weights)
        total += w;
    for (unsigned p = 0; p < parts; ++p) {
        EdgeId in_part = 0;
        for (NodeId i = part.begin(p); i < part.end(p); ++i)
            in_part += weights[i];
        // Each part within 3x the fair share (hubs can spill).
        EXPECT_LE(in_part, 3 * total / parts + 50);
    }
}

TEST(Partition1dTest, UniformSplit)
{
    const auto part = uniformPartition(100, 3);
    EXPECT_EQ(part.starts,
              (std::vector<NodeId>{0, 33, 66, 100}));
}

TEST(GridShape, NearSquareFactorizations)
{
    unsigned r = 0, c = 0;
    chooseGridShape(2048, r, c);
    EXPECT_EQ(r * c, 2048u);
    EXPECT_EQ(r, 32u);
    EXPECT_EQ(c, 64u);

    chooseGridShape(1024, r, c);
    EXPECT_EQ(r, 32u);
    EXPECT_EQ(c, 32u);

    chooseGridShape(512, r, c);
    EXPECT_EQ(r, 16u);
    EXPECT_EQ(c, 32u);

    chooseGridShape(7, r, c); // prime: degenerate 1 x 7
    EXPECT_EQ(r, 1u);
    EXPECT_EQ(c, 7u);
}

TEST(GridShape, TileIdsAreRowMajor)
{
    const auto m = testMatrix();
    const auto grid = makeGrid2d(m, 12);
    EXPECT_EQ(grid.gridRows * grid.gridCols, 12u);
    EXPECT_EQ(grid.tileId(0, 0), 0u);
    EXPECT_EQ(grid.tileId(1, 0), grid.gridCols);
}

TEST(WeightsTest, RowAndColCountsSumToNnz)
{
    const auto m = testMatrix();
    EdgeId row_total = 0, col_total = 0;
    for (auto w : rowWeights(m))
        row_total += w;
    for (auto w : colWeights(m))
        col_total += w;
    EXPECT_EQ(row_total, m.nnz());
    EXPECT_EQ(col_total, m.nnz());
}
