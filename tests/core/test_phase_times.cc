/** @file PhaseTimes arithmetic and helper utilities. */

#include <gtest/gtest.h>

#include "core/kernel_base.hh"
#include "core/phase_times.hh"

using namespace alphapim;
using namespace alphapim::core;

TEST(PhaseTimes, TotalSumsPhases)
{
    PhaseTimes t;
    t.load = 1.0;
    t.kernel = 2.0;
    t.retrieve = 3.0;
    t.merge = 4.0;
    EXPECT_DOUBLE_EQ(t.total(), 10.0);
}

TEST(PhaseTimes, AccumulationIsPerPhase)
{
    PhaseTimes a, b;
    a.load = 1.0;
    a.kernel = 2.0;
    b.load = 0.5;
    b.merge = 0.25;
    a += b;
    EXPECT_DOUBLE_EQ(a.load, 1.5);
    EXPECT_DOUBLE_EQ(a.kernel, 2.0);
    EXPECT_DOUBLE_EQ(a.merge, 0.25);
    EXPECT_DOUBLE_EQ(a.total(), 3.75);
}

TEST(PhaseTimes, DefaultIsZero)
{
    PhaseTimes t;
    EXPECT_DOUBLE_EQ(t.total(), 0.0);
}

TEST(EvenSplit, CoversTotalContiguously)
{
    const auto starts = detail::evenSplit(103, 8);
    ASSERT_EQ(starts.size(), 9u);
    EXPECT_EQ(starts.front(), 0u);
    EXPECT_EQ(starts.back(), 103u);
    for (unsigned p = 0; p < 8; ++p) {
        const auto width = starts[p + 1] - starts[p];
        EXPECT_GE(width, 103u / 8);
        EXPECT_LE(width, 103u / 8 + 1);
    }
}

TEST(EvenSplit, MorePartsThanItems)
{
    const auto starts = detail::evenSplit(3, 8);
    EXPECT_EQ(starts.back(), 3u);
    unsigned nonempty = 0;
    for (unsigned p = 0; p < 8; ++p)
        nonempty += starts[p + 1] > starts[p] ? 1 : 0;
    EXPECT_EQ(nonempty, 3u);
}

TEST(SearchDepth, BinarySearchProbeCounts)
{
    EXPECT_EQ(detail::searchDepth(0), 1u);
    EXPECT_EQ(detail::searchDepth(1), 1u);
    EXPECT_EQ(detail::searchDepth(2), 2u);
    EXPECT_EQ(detail::searchDepth(1023), 10u);
    EXPECT_EQ(detail::searchDepth(1024), 11u);
}

TEST(WramBudgets, AreFractionsOfWram)
{
    upmem::DpuConfig cfg;
    EXPECT_EQ(detail::wramOutputBudget(cfg), cfg.wramBytes / 2);
    EXPECT_EQ(detail::wramInputBudget(cfg), cfg.wramBytes / 4);
    EXPECT_LT(detail::wramOutputBudget(cfg) +
                  detail::wramInputBudget(cfg),
              cfg.wramBytes);
}
