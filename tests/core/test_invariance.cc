/**
 * @file
 * Parallelization-invariance properties: functional results must be
 * identical regardless of DPU count, tasklet count, or kernel
 * variant -- only the timing model may change.
 */

#include <gtest/gtest.h>

#include "apps/graph_apps.hh"
#include "common/random.hh"
#include "core/kernels.hh"
#include "core/reference.hh"
#include "sparse/generators.hh"
#include "sparse/graph_stats.hh"

using namespace alphapim;
using namespace alphapim::core;

namespace
{

sparse::CooMatrix<float>
testGraph(std::uint64_t seed)
{
    Rng rng(seed);
    return sparse::edgeListToSymmetricCoo(
        sparse::generateScaleMatched(350, 9, 22, rng));
}

sparse::SparseVector<std::uint32_t>
testInput(NodeId n, std::uint64_t seed)
{
    Rng rng(seed);
    sparse::SparseVector<std::uint32_t> x(n);
    for (NodeId i = 0; i < n; ++i) {
        if (rng.nextBernoulli(0.15))
            x.append(i, 1u + static_cast<std::uint32_t>(
                                rng.nextBounded(7)));
    }
    return x;
}

} // namespace

TEST(Invariance, ResultsIndependentOfDpuCount)
{
    const auto a = testGraph(1);
    const auto x = testInput(a.numRows(), 2);
    const auto expected = referenceMxv<IntPlusTimes>(a, x);
    for (unsigned dpus : {1u, 3u, 16u, 64u}) {
        upmem::SystemConfig cfg;
        cfg.numDpus = dpus;
        cfg.dpu.tasklets = 8;
        const upmem::UpmemSystem sys(cfg);
        for (auto v : {KernelVariant::SpmspvCsc2d,
                       KernelVariant::SpmspvCscC,
                       KernelVariant::SpmvDcoo2d}) {
            const auto kernel =
                makeKernel<IntPlusTimes>(v, sys, a, dpus);
            EXPECT_EQ(kernel->run(x).y, expected)
                << kernelVariantName(v) << " at " << dpus
                << " DPUs";
        }
    }
}

TEST(Invariance, ResultsIndependentOfTaskletCount)
{
    const auto a = testGraph(3);
    const auto x = testInput(a.numRows(), 4);
    const auto expected = referenceMxv<IntPlusTimes>(a, x);
    for (unsigned tasklets : {1u, 2u, 11u, 24u}) {
        upmem::SystemConfig cfg;
        cfg.numDpus = 8;
        cfg.dpu.tasklets = tasklets;
        const upmem::UpmemSystem sys(cfg);
        const auto kernel = makeKernel<IntPlusTimes>(
            KernelVariant::SpmspvCsc2d, sys, a, 8);
        EXPECT_EQ(kernel->run(x).y, expected)
            << tasklets << " tasklets";
    }
}

TEST(Invariance, MoreTaskletsNeverSlowTheKernelMuch)
{
    // Thread-level parallelism must help (or at least not hurt
    // beyond sync noise) -- paper section 4.1.2.
    const auto a = testGraph(5);
    const auto x = testInput(a.numRows(), 6);
    double t1 = 0.0, t16 = 0.0;
    for (unsigned tasklets : {1u, 16u}) {
        upmem::SystemConfig cfg;
        cfg.numDpus = 4;
        cfg.dpu.tasklets = tasklets;
        const upmem::UpmemSystem sys(cfg);
        const auto kernel = makeKernel<IntPlusTimes>(
            KernelVariant::SpmspvCsc2d, sys, a, 4);
        const double t = kernel->run(x).times.kernel;
        (tasklets == 1 ? t1 : t16) = t;
    }
    EXPECT_LT(t16, t1);
}

TEST(Invariance, BfsLevelsIndependentOfDpuCount)
{
    const auto a = testGraph(7);
    const NodeId source = sparse::largestComponentVertex(a);
    std::vector<std::uint32_t> first;
    for (unsigned dpus : {2u, 8u, 32u}) {
        upmem::SystemConfig cfg;
        cfg.numDpus = dpus;
        cfg.dpu.tasklets = 8;
        const upmem::UpmemSystem sys(cfg);
        const auto result = apps::runBfs(sys, a, source);
        if (first.empty())
            first = result.levels;
        else
            EXPECT_EQ(result.levels, first) << dpus << " DPUs";
    }
}

TEST(Invariance, FutureHardwareKnobsPreserveResults)
{
    const auto a = testGraph(9);
    const auto x = testInput(a.numRows(), 10);
    const auto expected = referenceMxv<IntPlusTimes>(a, x);
    upmem::SystemConfig cfg;
    cfg.numDpus = 16;
    cfg.dpu.tasklets = 8;
    cfg.dpu.nonBlockingDma = true;
    cfg.dpu.hardwareAtomics = true;
    cfg.dpu.revolverGap = 4;
    cfg.transfer.directInterconnect = true;
    const upmem::UpmemSystem sys(cfg);
    const auto kernel = makeKernel<IntPlusTimes>(
        KernelVariant::SpmspvCsc2d, sys, a, 16);
    EXPECT_EQ(kernel->run(x).y, expected);
}
