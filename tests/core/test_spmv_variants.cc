/** @file Extended SparseP 1D SpMV variants: correctness and the
 * balance property that motivates COO.nnz. */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "core/kernels.hh"
#include "core/reference.hh"
#include "sparse/generators.hh"

using namespace alphapim;
using namespace alphapim::core;

namespace
{

upmem::UpmemSystem
testSystem(unsigned dpus)
{
    upmem::SystemConfig cfg;
    cfg.numDpus = dpus;
    cfg.dpu.tasklets = 8;
    return upmem::UpmemSystem(cfg);
}

sparse::SparseVector<std::uint32_t>
denseInput(NodeId n, std::uint64_t seed)
{
    Rng rng(seed);
    sparse::SparseVector<std::uint32_t> x(n);
    for (NodeId i = 0; i < n; ++i)
        x.append(i, 1u + static_cast<std::uint32_t>(
                            rng.nextBounded(7)));
    return x;
}

} // namespace

TEST(SpmvRowVariants, MatchReferenceOnRandomGraphs)
{
    Rng rng(5);
    const auto list = sparse::generateScaleMatched(400, 8, 24, rng);
    const auto a = sparse::edgeListToSymmetricCoo(list);
    const auto sys = testSystem(16);
    const auto x = denseInput(a.numRows(), 9);
    const auto expected = referenceMxv<IntPlusTimes>(a, x);
    for (auto v : {KernelVariant::SpmvCooRow1d,
                   KernelVariant::SpmvCsrRow1d}) {
        const auto kernel = makeKernel<IntPlusTimes>(v, sys, a, 16);
        const auto r = kernel->run(x);
        EXPECT_EQ(r.y, expected) << kernelVariantName(v);
    }
}

TEST(SpmvRowVariants, NamesAndKinds)
{
    Rng rng(6);
    const auto list = sparse::generateErdosRenyi(100, 300, rng);
    const auto a = sparse::edgeListToSymmetricCoo(list);
    const auto sys = testSystem(4);
    const auto coo_row = makeKernel<IntPlusTimes>(
        KernelVariant::SpmvCooRow1d, sys, a, 4);
    const auto csr_row = makeKernel<IntPlusTimes>(
        KernelVariant::SpmvCsrRow1d, sys, a, 4);
    EXPECT_STREQ(coo_row->name(), "SpMV-COO.row(1D)");
    EXPECT_STREQ(csr_row->name(), "SpMV-CSR.row(1D)");
    EXPECT_EQ(coo_row->kind(), KernelKind::SpMV);
    // CSR carries the row-pointer array on top of the entries.
    EXPECT_GT(csr_row->matrixBytes(), 0u);
}

TEST(SpmvRowVariants, RowGranularSuffersOnSkewedGraphs)
{
    // One hub vertex with ~half the edges: the DPU owning the hub's
    // row range serializes under row-granular partitioning, while
    // nnz balancing spreads the hub's nonzeros.
    Rng rng(7);
    sparse::CooMatrix<float> a(512, 512);
    for (unsigned e = 0; e < 400; ++e) {
        const auto u = static_cast<NodeId>(rng.nextBounded(512));
        if (u == 0)
            continue;
        a.addEntry(0, u, 1.0f);
        a.addEntry(u, 0, 1.0f);
    }
    for (unsigned e = 0; e < 400; ++e) {
        const auto u = static_cast<NodeId>(rng.nextBounded(511) + 1);
        const auto v = static_cast<NodeId>(rng.nextBounded(511) + 1);
        if (u == v)
            continue;
        a.addEntry(u, v, 1.0f);
        a.addEntry(v, u, 1.0f);
    }
    a.coalesce();

    const auto sys = testSystem(32);
    const auto x = denseInput(512, 11);
    const auto nnz_balanced = makeKernel<IntPlusTimes>(
        KernelVariant::SpmvCoo1d, sys, a, 32);
    const auto row_granular = makeKernel<IntPlusTimes>(
        KernelVariant::SpmvCooRow1d, sys, a, 32);
    const auto r_nnz = nnz_balanced->run(x);
    const auto r_row = row_granular->run(x);
    EXPECT_EQ(r_nnz.y, r_row.y);
    EXPECT_GT(r_row.times.kernel, 1.3 * r_nnz.times.kernel);
}

TEST(SpmvRowVariants, CsrStreamsFewerBytesThanCoo)
{
    // Same partitioning, but CSR's 8-byte entries mean less DMA
    // traffic than COO's 12-byte entries on long rows.
    Rng rng(8);
    const auto list = sparse::generateErdosRenyi(300, 3000, rng);
    const auto a = sparse::edgeListToSymmetricCoo(list);
    const auto sys = testSystem(8);
    const auto x = denseInput(300, 13);
    const auto coo = makeKernel<IntPlusTimes>(
        KernelVariant::SpmvCooRow1d, sys, a, 8);
    const auto csr = makeKernel<IntPlusTimes>(
        KernelVariant::SpmvCsrRow1d, sys, a, 8);
    const auto r_coo = coo->run(x);
    const auto r_csr = csr->run(x);
    using upmem::OpClass;
    const auto coo_dma_instr =
        r_coo.profile.aggregate.instrByClass[static_cast<std::size_t>(
            OpClass::DmaRead)];
    const auto csr_dma_instr =
        r_csr.profile.aggregate.instrByClass[static_cast<std::size_t>(
            OpClass::DmaRead)];
    // CSR pays rowptr streams but saves a third of entry traffic;
    // with long ER rows the entry stream dominates.
    EXPECT_LE(csr_dma_instr, coo_dma_instr + 300);
}
