/** @file Decision tree training and the kernel switch model. */

#include <gtest/gtest.h>

#include "core/adaptive.hh"

using namespace alphapim;
using namespace alphapim::core;

TEST(DecisionTree, UntrainedDefaultsToScaleFree)
{
    DegreeDecisionTree tree;
    EXPECT_TRUE(tree.classifyScaleFree(3.0, 1.0));
}

TEST(DecisionTree, LearnsLinearlySeparableSplit)
{
    // Regular class: low degree std; scale-free: high std.
    std::vector<GraphSample> samples;
    for (double std : {0.5, 0.8, 1.0, 1.2})
        samples.push_back({3.0, std, false});
    for (double std : {10.0, 25.0, 40.0, 120.0})
        samples.push_back({10.0, std, true});
    DegreeDecisionTree tree;
    tree.train(samples, 2);
    EXPECT_FALSE(tree.classifyScaleFree(2.8, 1.0));
    EXPECT_TRUE(tree.classifyScaleFree(12.0, 40.0));
    EXPECT_GT(tree.nodeCount(), 1u);
}

TEST(DecisionTree, PureCorpusYieldsLeaf)
{
    std::vector<GraphSample> samples = {
        {1.0, 1.0, true}, {2.0, 2.0, true}};
    DegreeDecisionTree tree;
    tree.train(samples, 3);
    EXPECT_EQ(tree.nodeCount(), 1u);
    EXPECT_TRUE(tree.classifyScaleFree(100.0, 100.0));
}

TEST(DecisionTree, DepthZeroIsMajorityVote)
{
    std::vector<GraphSample> samples = {{1, 1, false},
                                        {2, 2, false},
                                        {3, 3, true}};
    DegreeDecisionTree tree;
    tree.train(samples, 0);
    EXPECT_FALSE(tree.classifyScaleFree(3, 3));
}

TEST(SwitchModel, ClassifiesTable2Correctly)
{
    const KernelSwitchModel model;
    for (const auto &spec : sparse::table2Specs()) {
        sparse::GraphStats stats;
        stats.avgDegree = spec.avgDegree;
        stats.degreeStd = spec.degreeStd;
        const bool expect_scale_free =
            spec.family != sparse::GraphFamily::Regular;
        EXPECT_EQ(model.isScaleFree(stats), expect_scale_free)
            << spec.abbreviation;
    }
}

TEST(SwitchModel, ThresholdsMatchPaper)
{
    const KernelSwitchModel model;
    sparse::GraphStats road;
    road.avgDegree = 2.78;
    road.degreeStd = 1.0;
    EXPECT_DOUBLE_EQ(model.switchThreshold(road), 0.20);

    sparse::GraphStats social;
    social.avgDegree = 12.0;
    social.degreeStd = 40.0;
    EXPECT_DOUBLE_EQ(model.switchThreshold(social), 0.50);
}

TEST(SwitchModel, GeneratedDatasetsClassifyByFamily)
{
    const KernelSwitchModel model;
    const auto road = sparse::buildDataset("r-TX", 0.02, 3);
    EXPECT_FALSE(model.isScaleFree(road.stats));
    const auto social = sparse::buildDataset("s-S11", 0.1, 3);
    EXPECT_TRUE(model.isScaleFree(social.stats));
}
