/**
 * @file
 * Empirical cost model (paper section 4.2.1): structural properties
 * and agreement with the simulator within a modest factor.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "core/cost_model.hh"
#include "core/engine.hh"
#include "core/kernels.hh"
#include "sparse/generators.hh"

using namespace alphapim;
using namespace alphapim::core;

namespace
{

upmem::UpmemSystem
testSystem(unsigned dpus)
{
    upmem::SystemConfig cfg;
    cfg.numDpus = dpus;
    return upmem::UpmemSystem(cfg);
}

sparse::CooMatrix<float>
testGraph(NodeId n, double deg, double std, std::uint64_t seed)
{
    Rng rng(seed);
    return sparse::edgeListToSymmetricCoo(
        sparse::generateScaleMatched(n, deg, std, rng));
}

} // namespace

TEST(CostModel, SpmspvCostIsMonotoneInDensity)
{
    const auto sys = testSystem(256);
    const auto a = testGraph(5000, 10, 30, 1);
    const KernelCostModel model(sys, sparse::computeGraphStats(a),
                                256);
    double prev = 0.0;
    for (double d : {0.01, 0.05, 0.1, 0.3, 0.6, 1.0}) {
        const double total = model.estimateSpmspv(d).total();
        EXPECT_GE(total, prev);
        prev = total;
    }
}

TEST(CostModel, SpmvCostIsDensityInvariant)
{
    const auto sys = testSystem(256);
    const auto a = testGraph(5000, 10, 30, 2);
    const KernelCostModel model(sys, sparse::computeGraphStats(a),
                                256);
    EXPECT_DOUBLE_EQ(model.estimateSpmv().total(),
                     model.estimateSpmv().total());
    EXPECT_GT(model.estimateSpmv().total(), 0.0);
}

TEST(CostModel, ExpectedOutputNnzSaturates)
{
    const auto sys = testSystem(64);
    const auto a = testGraph(3000, 12, 20, 3);
    const auto stats = sparse::computeGraphStats(a);
    const KernelCostModel model(sys, stats, 64);
    const auto low = model.expectedOutputNnz(0.01);
    const auto high = model.expectedOutputNnz(1.0);
    EXPECT_LT(low, high);
    EXPECT_LE(high, stats.nodes);
    // At full density nearly every row is covered.
    EXPECT_GT(high, stats.nodes * 9 / 10);
}

TEST(CostModel, SwitchDensityIsInUnitInterval)
{
    const auto sys = testSystem(512);
    for (std::uint64_t seed : {4u, 5u, 6u}) {
        const auto a = testGraph(8000, 8, 25, seed);
        const KernelCostModel model(
            sys, sparse::computeGraphStats(a), 512);
        const double d = model.predictedSwitchDensity();
        EXPECT_GT(d, 0.0);
        EXPECT_LE(d, 1.0);
    }
}

TEST(CostModel, PredictionsTrackSimulationWithinFactor)
{
    // The model is a planning heuristic, not a replacement for the
    // simulator: require agreement within 5x on both kernels.
    const auto sys = testSystem(128);
    const auto a = testGraph(6000, 10, 30, 7);
    const auto stats = sparse::computeGraphStats(a);
    const KernelCostModel model(sys, stats, 128);

    Rng rng(8);
    sparse::SparseVector<std::uint32_t> x(a.numRows());
    for (NodeId i = 0; i < a.numRows(); ++i) {
        if (rng.nextBernoulli(0.2))
            x.append(i, 1u);
    }
    const auto spmspv = makeKernel<IntPlusTimes>(
        KernelVariant::SpmspvCsc2d, sys, a, 128);
    const auto spmv = makeKernel<IntPlusTimes>(
        KernelVariant::SpmvDcoo2d, sys, a, 128);
    const double sim_spmspv = spmspv->run(x).times.total();
    const double sim_spmv = spmv->run(x).times.total();
    const double est_spmspv = model.estimateSpmspv(0.2).total();
    const double est_spmv = model.estimateSpmv().total();

    EXPECT_LT(est_spmspv, 5.0 * sim_spmspv);
    EXPECT_GT(est_spmspv, sim_spmspv / 5.0);
    EXPECT_LT(est_spmv, 5.0 * sim_spmv);
    EXPECT_GT(est_spmv, sim_spmv / 5.0);
}

TEST(CostModel, EngineStrategyUsesPredictedThreshold)
{
    const auto sys = testSystem(64);
    const auto a = testGraph(2000, 8, 20, 9);
    PimEngine<BoolOrAnd> engine(sys, a, 64,
                                MxvStrategy::CostModel);
    EXPECT_GT(engine.switchThreshold(), 0.0);
    EXPECT_LE(engine.switchThreshold(), 1.0);
    EXPECT_STREQ(mxvStrategyName(MxvStrategy::CostModel),
                 "cost-model");

    // Results stay correct regardless of the threshold choice.
    sparse::SparseVector<std::uint32_t> x(a.numRows());
    x.append(0, 1u);
    const auto y = engine.multiply(x).y;
    EXPECT_EQ(y.size(), a.numRows());
}
