/**
 * @file
 * Equivalence tests: every PIM kernel variant must produce exactly
 * the reference semiring product for every semiring, matrix shape,
 * DPU count, and input-vector density.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "core/kernels.hh"
#include "core/reference.hh"
#include "sparse/generators.hh"

using namespace alphapim;
using namespace alphapim::core;

namespace
{

/** Small simulated machine so the tests run fast. */
upmem::UpmemSystem
testSystem(unsigned dpus)
{
    upmem::SystemConfig cfg;
    cfg.numDpus = dpus;
    cfg.dpu.tasklets = 8;
    return upmem::UpmemSystem(cfg);
}

/** Random symmetric test graph with weights in [1, 16]. */
sparse::CooMatrix<float>
testGraph(NodeId n, EdgeId m, std::uint64_t seed)
{
    Rng rng(seed);
    const auto list = sparse::generateErdosRenyi(n, m, rng);
    const auto pattern = sparse::edgeListToSymmetricCoo(list);
    return sparse::assignSymmetricWeights(pattern, 1.0f, 16.0f, rng);
}

/** Random sparse input vector of the given density. */
template <typename S>
sparse::SparseVector<typename S::Value>
randomInput(NodeId n, double density, std::uint64_t seed)
{
    Rng rng(seed);
    sparse::SparseVector<typename S::Value> x(n);
    for (NodeId i = 0; i < n; ++i) {
        if (rng.nextBernoulli(density)) {
            if constexpr (std::is_same_v<S, BoolOrAnd>) {
                x.append(i, 1u);
            } else {
                x.append(i, 1.0f + static_cast<float>(
                                       rng.nextBounded(8)));
            }
        }
    }
    return x;
}

template <typename S>
void
expectMatchesReference(KernelVariant variant, unsigned dpus,
                       NodeId n, EdgeId m, double density,
                       std::uint64_t seed)
{
    const auto sys = testSystem(dpus);
    const auto a = testGraph(n, m, seed);
    const auto x = randomInput<S>(n, density, seed * 13 + 7);
    const auto kernel = makeKernel<S>(variant, sys, a, dpus);
    const auto result = kernel->run(x);
    const auto expected = referenceMxv<S>(a, x);

    ASSERT_EQ(result.y.size(), expected.size());
    for (NodeId i = 0; i < expected.size(); ++i) {
        if constexpr (std::is_same_v<typename S::Value, float>) {
            if (std::isinf(expected[i])) {
                // MinPlus zero is +inf; NEAR would produce NaN.
                EXPECT_EQ(result.y[i], expected[i])
                    << "row " << i << " variant "
                    << kernelVariantName(variant);
            } else {
                EXPECT_NEAR(result.y[i], expected[i],
                            1e-3 * (1.0 + std::abs(expected[i])))
                    << "row " << i << " variant "
                    << kernelVariantName(variant);
            }
        } else {
            EXPECT_EQ(result.y[i], expected[i])
                << "row " << i << " variant "
                << kernelVariantName(variant);
        }
    }
    EXPECT_EQ(result.outputNnz, denseNnz<S>(expected));
    EXPECT_GT(result.times.total(), 0.0);
    if (x.nnz() > 0 && a.nnz() > 0) {
        EXPECT_GT(result.profile.aggregate.totalInstructions(), 0u);
    }
}

struct KernelCase
{
    KernelVariant variant;
    unsigned dpus;
    double density;
};

std::string
caseName(const testing::TestParamInfo<KernelCase> &info)
{
    std::string name = kernelVariantName(info.param.variant);
    for (char &c : name) {
        if (c == '-' || c == '.')
            c = '_';
    }
    return name + "_d" + std::to_string(info.param.dpus) + "_p" +
           std::to_string(static_cast<int>(
               info.param.density * 100));
}

class KernelEquivalence : public testing::TestWithParam<KernelCase>
{
};

} // namespace

TEST_P(KernelEquivalence, BoolOrAndMatchesReference)
{
    const auto p = GetParam();
    expectMatchesReference<BoolOrAnd>(p.variant, p.dpus, 300, 1200,
                                      p.density, 42);
}

TEST_P(KernelEquivalence, MinPlusMatchesReference)
{
    const auto p = GetParam();
    expectMatchesReference<MinPlus>(p.variant, p.dpus, 300, 1200,
                                    p.density, 43);
}

TEST_P(KernelEquivalence, PlusTimesMatchesReference)
{
    const auto p = GetParam();
    expectMatchesReference<PlusTimes>(p.variant, p.dpus, 300, 1200,
                                      p.density, 44);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, KernelEquivalence,
    testing::Values(
        KernelCase{KernelVariant::SpmspvCoo, 8, 0.05},
        KernelCase{KernelVariant::SpmspvCoo, 32, 0.50},
        KernelCase{KernelVariant::SpmspvCsr, 8, 0.05},
        KernelCase{KernelVariant::SpmspvCsr, 32, 0.50},
        KernelCase{KernelVariant::SpmspvCscR, 8, 0.05},
        KernelCase{KernelVariant::SpmspvCscR, 32, 0.50},
        KernelCase{KernelVariant::SpmspvCscC, 8, 0.05},
        KernelCase{KernelVariant::SpmspvCscC, 32, 0.50},
        KernelCase{KernelVariant::SpmspvCsc2d, 8, 0.05},
        KernelCase{KernelVariant::SpmspvCsc2d, 16, 0.20},
        KernelCase{KernelVariant::SpmspvCsc2d, 32, 0.50},
        KernelCase{KernelVariant::SpmvCoo1d, 8, 0.05},
        KernelCase{KernelVariant::SpmvCoo1d, 32, 0.50},
        KernelCase{KernelVariant::SpmvDcoo2d, 8, 0.05},
        KernelCase{KernelVariant::SpmvDcoo2d, 16, 0.20},
        KernelCase{KernelVariant::SpmvDcoo2d, 32, 0.50}),
    caseName);

TEST(KernelEdgeCases, EmptyInputVector)
{
    const auto sys = testSystem(8);
    const auto a = testGraph(100, 300, 7);
    sparse::SparseVector<std::uint32_t> empty(100);
    const auto kernel =
        makeKernel<BoolOrAnd>(KernelVariant::SpmspvCsc2d, sys, a, 8);
    const auto result = kernel->run(empty);
    EXPECT_EQ(result.outputNnz, 0u);
    for (auto v : result.y)
        EXPECT_EQ(v, 0u);
}

TEST(KernelEdgeCases, FullDensityEqualsSpmv)
{
    const auto sys = testSystem(8);
    const auto a = testGraph(120, 500, 9);
    const auto x = randomInput<PlusTimes>(120, 1.0, 11);
    const auto spmspv =
        makeKernel<PlusTimes>(KernelVariant::SpmspvCsc2d, sys, a, 8);
    const auto spmv =
        makeKernel<PlusTimes>(KernelVariant::SpmvDcoo2d, sys, a, 8);
    const auto r1 = spmspv->run(x);
    const auto r2 = spmv->run(x);
    ASSERT_EQ(r1.y.size(), r2.y.size());
    for (std::size_t i = 0; i < r1.y.size(); ++i)
        EXPECT_NEAR(r1.y[i], r2.y[i], 1e-3 * (1.0 + std::abs(r1.y[i])));
}

TEST(KernelEdgeCases, SingleDpu)
{
    const auto sys = testSystem(1);
    const auto a = testGraph(64, 200, 5);
    const auto x = randomInput<MinPlus>(64, 0.2, 3);
    for (auto variant :
         {KernelVariant::SpmspvCoo, KernelVariant::SpmspvCscR,
          KernelVariant::SpmspvCscC, KernelVariant::SpmspvCsc2d,
          KernelVariant::SpmvCoo1d, KernelVariant::SpmvDcoo2d}) {
        const auto kernel = makeKernel<MinPlus>(variant, sys, a, 1);
        const auto result = kernel->run(x);
        const auto expected = referenceMxv<MinPlus>(a, x);
        for (NodeId i = 0; i < expected.size(); ++i)
            EXPECT_FLOAT_EQ(result.y[i], expected[i]);
    }
}

TEST(KernelMetadata, NamesAndKinds)
{
    const auto sys = testSystem(4);
    const auto a = testGraph(50, 120, 1);
    const auto csc2d =
        makeKernel<BoolOrAnd>(KernelVariant::SpmspvCsc2d, sys, a, 4);
    EXPECT_STREQ(csc2d->name(), "CSC-2D");
    EXPECT_EQ(csc2d->kind(), KernelKind::SpMSpV);
    EXPECT_EQ(csc2d->numRows(), 50u);
    EXPECT_GT(csc2d->matrixBytes(), 0u);

    const auto spmv =
        makeKernel<BoolOrAnd>(KernelVariant::SpmvCoo1d, sys, a, 4);
    EXPECT_EQ(spmv->kind(), KernelKind::SpMV);
}
