/** @file Host <-> DPU transfer cost model properties. */

#include <gtest/gtest.h>

#include "upmem/transfer_model.hh"

using namespace alphapim;
using namespace alphapim::upmem;

namespace
{

TransferConfig
testConfig()
{
    TransferConfig cfg;
    return cfg;
}

} // namespace

TEST(TransferModel, ZeroBytesIsFree)
{
    const auto cfg = testConfig();
    TransferModel model(cfg);
    EXPECT_EQ(model.scatterGather({0, 0, 0},
                                  TransferDirection::HostToDpu),
              0.0);
    EXPECT_EQ(model.broadcast(0, 64), 0.0);
}

TEST(TransferModel, MonotonicInBytes)
{
    const auto cfg = testConfig();
    TransferModel model(cfg);
    const auto t1 = model.uniformScatter(1024, 128,
                                         TransferDirection::HostToDpu);
    const auto t2 = model.uniformScatter(4096, 128,
                                         TransferDirection::HostToDpu);
    EXPECT_LT(t1, t2);
}

TEST(TransferModel, BroadcastCostIndependentOfDpuCountAcrossRanks)
{
    const auto cfg = testConfig();
    TransferModel model(cfg);
    // Full ranks transfer in parallel: broadcasting to 1 rank or 8
    // ranks costs the same bus time.
    const auto t64 = model.broadcast(1 << 20, 64);
    const auto t512 = model.broadcast(1 << 20, 512);
    EXPECT_NEAR(t64, t512, 1e-12);
}

TEST(TransferModel, ScatterPaysPerDpuSetup)
{
    auto cfg = testConfig();
    cfg.perDpuSetup = 1e-6;
    TransferModel model(cfg);
    const auto t_small = model.uniformScatter(64, 64,
                                              TransferDirection::HostToDpu);
    const auto t_many = model.uniformScatter(64, 2048,
                                             TransferDirection::HostToDpu);
    // 2048 distinct buffers dominate via setup cost.
    EXPECT_GT(t_many, t_small + 1.9e-3);
}

TEST(TransferModel, BroadcastBeatsScatterOfSameReplicatedData)
{
    const auto cfg = testConfig();
    TransferModel model(cfg);
    const Bytes vec = 1 << 20;
    const auto bcast = model.broadcast(vec, 2048);
    const auto scatter = model.uniformScatter(
        vec, 2048, TransferDirection::HostToDpu);
    // Replicating the same 1 MiB to every DPU via scatter pays both
    // per-DPU setup and the host copy of 2 GiB.
    EXPECT_LT(bcast, scatter);
}

TEST(TransferModel, RankPaddingUsesMaxBufferPerRank)
{
    const auto cfg = testConfig();
    TransferModel model(cfg);
    // One big buffer in the rank forces padding for all 64.
    std::vector<Bytes> skewed(64, 16);
    skewed[5] = 1 << 20;
    std::vector<Bytes> uniform(64, 16);
    const auto t_skewed =
        model.scatterGather(skewed, TransferDirection::HostToDpu);
    const auto t_uniform =
        model.scatterGather(uniform, TransferDirection::HostToDpu);
    EXPECT_GT(t_skewed, t_uniform * 10);
}

TEST(TransferModel, RetrieveDirectionUsesItsOwnBandwidth)
{
    auto cfg = testConfig();
    cfg.rankBwHostToDpu = 1e9;
    cfg.rankBwDpuToHost = 0.5e9;
    cfg.perDpuSetup = 0;
    cfg.launchLatency = 0;
    cfg.hostCopyBw = 1e18; // irrelevant
    TransferModel model(cfg);
    const auto down = model.uniformScatter(
        1 << 20, 64, TransferDirection::HostToDpu);
    const auto up = model.uniformScatter(
        1 << 20, 64, TransferDirection::DpuToHost);
    EXPECT_NEAR(up, 2.0 * down, 1e-9);
}
