/** @file System facade: launches, aggregation, kernel time. */

#include <atomic>

#include <gtest/gtest.h>

#include "upmem/upmem_system.hh"

using namespace alphapim;
using namespace alphapim::upmem;

namespace
{

SystemConfig
smallConfig(unsigned dpus, unsigned tasklets = 4)
{
    SystemConfig cfg;
    cfg.numDpus = dpus;
    cfg.dpu.tasklets = tasklets;
    return cfg;
}

} // namespace

TEST(UpmemSystem, LaunchAggregatesAcrossDpus)
{
    UpmemSystem sys(smallConfig(16));
    const auto profile = sys.launchKernel(
        16, [](unsigned dpu, std::vector<TaskletTrace> &traces) {
            traces[0].ops(OpClass::IntAdd, 10 * (dpu + 1));
        });
    // Slowest DPU has 160 adds.
    EXPECT_EQ(profile.aggregate.instrByClass[static_cast<std::size_t>(
                  OpClass::IntAdd)],
              10u * (16 * 17 / 2));
    EXPECT_EQ(profile.activeDpus, 16u);
    EXPECT_GT(profile.maxCycles, 0u);
}

TEST(UpmemSystem, KernelSecondsUsesClockAndOverhead)
{
    auto cfg = smallConfig(4);
    cfg.kernelLaunchOverhead = 1e-3;
    UpmemSystem sys(cfg);
    LaunchProfile profile;
    profile.maxCycles = 350'000; // 1 ms at 350 MHz
    EXPECT_NEAR(sys.kernelSeconds(profile), 2e-3, 1e-9);
}

TEST(UpmemSystem, GeneratorSeesEveryDpuExactlyOnce)
{
    UpmemSystem sys(smallConfig(64));
    std::vector<std::atomic<int>> hits(64);
    sys.launchKernel(64,
                     [&](unsigned dpu, std::vector<TaskletTrace> &) {
                         hits[dpu].fetch_add(1);
                     });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(UpmemSystem, TraceVectorPreSizedToTasklets)
{
    UpmemSystem sys(smallConfig(2, 7));
    sys.launchKernel(2,
                     [&](unsigned, std::vector<TaskletTrace> &traces) {
                         EXPECT_EQ(traces.size(), 7u);
                     });
}

TEST(UpmemSystemDeath, TooManyDpusRequested)
{
    UpmemSystem sys(smallConfig(4));
    EXPECT_DEATH(sys.launchKernel(
                     8, [](unsigned, std::vector<TaskletTrace> &) {}),
                 "more DPUs");
}

TEST(LaunchProfileTest, SequentialLaunchesAccumulate)
{
    LaunchProfile a, b;
    DpuProfile d;
    d.totalCycles = 100;
    d.issuedCycles = 80;
    a.add(d);
    b.add(d);
    a.add(b);
    EXPECT_EQ(a.maxCycles, 200u);
    EXPECT_EQ(a.aggregate.totalCycles, 200u);
    EXPECT_EQ(a.aggregate.issuedCycles, 160u);
}
