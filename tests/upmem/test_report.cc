/** @file Profile report rendering. */

#include <gtest/gtest.h>

#include "upmem/report.hh"
#include "upmem/scheduler.hh"

using namespace alphapim;
using namespace alphapim::upmem;

namespace
{

LaunchProfile
sampleProfile()
{
    DpuConfig cfg;
    cfg.tasklets = 4;
    RevolverScheduler sched(cfg);
    std::vector<TaskletTrace> traces(4);
    for (auto &t : traces) {
        t.ops(OpClass::IntAdd, 20);
        t.dmaRead(256);
        t.mutexLock(0);
        t.ops(OpClass::FloatMul, 5);
        t.mutexUnlock(0);
        t.barrier(0);
    }
    LaunchProfile launch;
    launch.add(sched.run(traces));
    return launch;
}

} // namespace

TEST(Report, SummaryContainsAllStallKinds)
{
    const auto launch = sampleProfile();
    const auto summary = renderProfileSummary(launch.aggregate);
    EXPECT_NE(summary.find("issued"), std::string::npos);
    EXPECT_NE(summary.find("mem"), std::string::npos);
    EXPECT_NE(summary.find("revolver"), std::string::npos);
    EXPECT_NE(summary.find("active threads"), std::string::npos);
}

TEST(Report, FullReportListsCategoriesAndClasses)
{
    SystemConfig cfg;
    cfg.numDpus = 4;
    const auto launch = sampleProfile();
    const auto report = renderProfileReport(launch, cfg);
    EXPECT_NE(report.find("instruction mix"), std::string::npos);
    EXPECT_NE(report.find("arithmetic"), std::string::npos);
    EXPECT_NE(report.find("int-add"), std::string::npos);
    EXPECT_NE(report.find("float-mul"), std::string::npos);
    EXPECT_NE(report.find("mutex-lock"), std::string::npos);
    EXPECT_NE(report.find("active DPUs: 1 / 4"), std::string::npos);
}

TEST(Report, EmptyProfileDoesNotDivideByZero)
{
    SystemConfig cfg;
    LaunchProfile empty;
    const auto report = renderProfileReport(empty, cfg);
    EXPECT_NE(report.find("DPU profile"), std::string::npos);
    const auto summary = renderProfileSummary(empty.aggregate);
    EXPECT_NE(summary.find("issued 0.0%"), std::string::npos);
}
