/**
 * @file
 * Property-based fuzzing of the revolver scheduler: random but
 * well-formed tasklet traces must always satisfy the accounting,
 * ordering, and liveness invariants, deterministically.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "upmem/scheduler.hh"

using namespace alphapim;
using namespace alphapim::upmem;

namespace
{

/**
 * Build a random, well-formed trace set: every mutex lock is paired
 * with an unlock; barriers appear at common sync points so every
 * live tasklet participates.
 */
std::vector<TaskletTrace>
randomTraces(std::uint64_t seed, unsigned tasklets)
{
    Rng rng(seed);
    std::vector<TaskletTrace> traces(tasklets);
    const unsigned phases = 1 + static_cast<unsigned>(
                                    rng.nextBounded(4));
    for (unsigned phase = 0; phase < phases; ++phase) {
        for (unsigned t = 0; t < tasklets; ++t) {
            auto &trace = traces[t];
            const unsigned pieces = static_cast<unsigned>(
                rng.nextBounded(6));
            for (unsigned p = 0; p < pieces; ++p) {
                switch (rng.nextBounded(5)) {
                  case 0:
                    trace.ops(OpClass::IntAdd,
                              1 + static_cast<std::uint32_t>(
                                      rng.nextBounded(64)));
                    break;
                  case 1:
                    trace.ops(OpClass::LoadWram,
                              1 + static_cast<std::uint32_t>(
                                      rng.nextBounded(16)));
                    break;
                  case 2:
                    trace.dmaRead(8 + static_cast<std::uint32_t>(
                                          rng.nextBounded(2048)));
                    break;
                  case 3:
                    trace.dmaWrite(8 + static_cast<std::uint32_t>(
                                           rng.nextBounded(512)));
                    break;
                  default: {
                    const auto id = static_cast<std::uint32_t>(
                        rng.nextBounded(4));
                    trace.mutexLock(id);
                    trace.ops(OpClass::Compare,
                              1 + static_cast<std::uint32_t>(
                                      rng.nextBounded(8)));
                    trace.mutexUnlock(id);
                    break;
                  }
                }
            }
        }
        // Common sync point.
        for (unsigned t = 0; t < tasklets; ++t)
            traces[t].barrier(0);
    }
    return traces;
}

Cycles
allStalls(const DpuProfile &p)
{
    Cycles total = 0;
    for (auto c : p.stallCycles)
        total += c;
    return total;
}

class SchedulerFuzz : public testing::TestWithParam<std::uint64_t>
{
};

} // namespace

TEST_P(SchedulerFuzz, InvariantsHold)
{
    const std::uint64_t seed = GetParam();
    for (unsigned tasklets : {1u, 3u, 8u, 16u}) {
        DpuConfig cfg;
        cfg.tasklets = std::max(tasklets, 1u);
        RevolverScheduler sched(cfg);
        const auto traces = randomTraces(seed, tasklets);

        const auto p = sched.run(traces);

        // 1. Cycle accounting is complete.
        EXPECT_EQ(p.totalCycles, p.issuedCycles + allStalls(p))
            << "seed " << seed << " tasklets " << tasklets;

        // 2. Every trace instruction was dispatched (spin retries
        //    may add lock instructions on top).
        std::uint64_t trace_instr = 0;
        std::uint64_t trace_unlocks = 0;
        for (const auto &t : traces) {
            trace_instr += t.instructionCount();
            for (const auto &r : t.records()) {
                if (r.kind == RecordKind::Mutex && r.count == 0)
                    ++trace_unlocks;
            }
        }
        EXPECT_GE(p.totalInstructions(), trace_instr);
        EXPECT_EQ(p.instrByClass[static_cast<std::size_t>(
                      OpClass::MutexUnlock)],
                  trace_unlocks);

        // 3. Throughput bounds: at most one dispatch per cycle; at
        //    least one dispatch every revolverGap cycles while work
        //    remains (single tasklet lower bound).
        EXPECT_LE(p.issuedCycles, p.totalCycles);

        // 4. Thread activity bounded by the tasklet count.
        EXPECT_LE(p.avgActiveThreads(),
                  static_cast<double>(tasklets) + 1e-9);

        // 5. Determinism.
        const auto p2 = sched.run(traces);
        EXPECT_EQ(p.totalCycles, p2.totalCycles);
        EXPECT_EQ(p.issuedCycles, p2.issuedCycles);
        EXPECT_EQ(p.instrByClass, p2.instrByClass);
        EXPECT_EQ(p.stallCycles, p2.stallCycles);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerFuzz,
                         testing::Range<std::uint64_t>(1, 25));

TEST(SchedulerFuzzEdge, ManyMutexesHighContention)
{
    DpuConfig cfg;
    cfg.tasklets = 16;
    RevolverScheduler sched(cfg);
    std::vector<TaskletTrace> traces(16);
    Rng rng(99);
    for (auto &t : traces) {
        for (int i = 0; i < 50; ++i) {
            const auto id =
                static_cast<std::uint32_t>(rng.nextBounded(2));
            t.mutexLock(id);
            t.ops(OpClass::IntAdd, 2);
            t.mutexUnlock(id);
        }
    }
    const auto p = sched.run(traces);
    // All critical sections execute; no deadlock or lost work.
    EXPECT_EQ(p.instrByClass[static_cast<std::size_t>(
                  OpClass::MutexUnlock)],
              16u * 50u);
    EXPECT_EQ(p.instrByClass[static_cast<std::size_t>(
                  OpClass::IntAdd)],
              16u * 50u * 2u);
}

TEST(SchedulerFuzzEdge, AlternatingBarriersAndWork)
{
    DpuConfig cfg;
    cfg.tasklets = 6;
    RevolverScheduler sched(cfg);
    std::vector<TaskletTrace> traces(6);
    for (unsigned t = 0; t < 6; ++t) {
        for (unsigned round = 0; round < 10; ++round) {
            traces[t].ops(OpClass::IntAdd, (t + 1) * (round + 1));
            traces[t].barrier(round % 3);
        }
    }
    const auto p = sched.run(traces);
    EXPECT_EQ(p.instrByClass[static_cast<std::size_t>(
                  OpClass::Barrier)],
              60u);
    EXPECT_EQ(p.totalCycles, p.issuedCycles + allStalls(p));
}
