/**
 * @file
 * Profile accumulation tests: DpuProfile::merge arithmetic, the
 * LaunchProfile::add(DpuProfile) per-DPU fold, and the documented
 * semantics of LaunchProfile::add(LaunchProfile) -- aggregate and
 * maxCycles accumulate across sequential launches while activeDpus
 * reports the peak -- including the invariants that reject profiles
 * not built through the per-DPU fold.
 */

#include <gtest/gtest.h>

#include "upmem/profile.hh"

using namespace alphapim;
using namespace alphapim::upmem;

namespace
{

DpuProfile
busyDpu(Cycles total, Cycles issued, std::uint64_t int_adds)
{
    DpuProfile p;
    p.totalCycles = total;
    p.issuedCycles = issued;
    p.stallCycles[static_cast<std::size_t>(StallReason::Memory)] =
        total - issued;
    p.instrByClass[static_cast<std::size_t>(OpClass::IntAdd)] =
        int_adds;
    p.activeThreadCycles = static_cast<double>(total) * 4.0;
    return p;
}

LaunchProfile
launchOf(std::initializer_list<DpuProfile> dpus)
{
    LaunchProfile launch;
    for (const auto &p : dpus)
        launch.add(p);
    return launch;
}

} // namespace

TEST(DpuProfile, MergeAccumulatesEveryCounter)
{
    DpuProfile a = busyDpu(1000, 700, 500);
    const DpuProfile b = busyDpu(400, 300, 200);
    a.merge(b);
    EXPECT_EQ(a.totalCycles, 1400u);
    EXPECT_EQ(a.issuedCycles, 1000u);
    EXPECT_EQ(a.stallCycles[static_cast<std::size_t>(
                  StallReason::Memory)],
              400u);
    EXPECT_EQ(a.instrByClass[static_cast<std::size_t>(
                  OpClass::IntAdd)],
              700u);
    EXPECT_DOUBLE_EQ(a.activeThreadCycles, 5600.0);
}

TEST(DpuProfile, ActiveCyclesSumsIssuedAndStallSlots)
{
    // Fully attributed DPU: every cycle was a dispatch or a stall.
    const DpuProfile full = busyDpu(1000, 700, 500);
    EXPECT_EQ(full.activeCycles(), 1000u);

    // A drained DPU leaves trailing slots unattributed: activeCycles
    // stays below totalCycles.
    DpuProfile drained;
    drained.totalCycles = 100;
    drained.issuedCycles = 60;
    drained.stallCycles[static_cast<std::size_t>(
        StallReason::Memory)] = 20;
    drained.stallCycles[static_cast<std::size_t>(
        StallReason::Sync)] = 10;
    EXPECT_EQ(drained.activeCycles(), 90u);
}

TEST(DpuProfile, MergeAccumulatesMramTraffic)
{
    DpuProfile a;
    a.mramReadBytes = 100;
    a.mramWriteBytes = 40;
    DpuProfile b;
    b.mramReadBytes = 60;
    b.mramWriteBytes = 8;
    a.merge(b);
    EXPECT_EQ(a.mramReadBytes, 160u);
    EXPECT_EQ(a.mramWriteBytes, 48u);
}

TEST(LaunchProfileDeath, RejectsOverAttributedDispatchSlots)
{
    LaunchProfile launch;
    DpuProfile bogus;
    bogus.totalCycles = 100;
    bogus.issuedCycles = 80;
    bogus.stallCycles[static_cast<std::size_t>(
        StallReason::Memory)] = 30; // 80 + 30 > 100
    EXPECT_DEATH(launch.add(bogus),
                 "stall \\+ issue cycles exceed total cycles");
}

TEST(LaunchProfile, AddDpuTracksMaxAndActive)
{
    const LaunchProfile launch = launchOf(
        {busyDpu(1000, 700, 500), busyDpu(400, 300, 200),
         DpuProfile{}}); // one idle DPU
    EXPECT_EQ(launch.aggregate.totalCycles, 1400u);
    EXPECT_EQ(launch.maxCycles, 1000u);
    EXPECT_EQ(launch.activeDpus, 2u); // the idle DPU does not count
}

TEST(LaunchProfile, AddLaunchAccumulatesCyclesButPeaksActiveDpus)
{
    LaunchProfile run = launchOf(
        {busyDpu(1000, 700, 500), busyDpu(400, 300, 200)});
    const LaunchProfile second = launchOf({busyDpu(600, 500, 300)});

    run.add(second);
    // Aggregate counters accumulate (DPU-cycle denominated).
    EXPECT_EQ(run.aggregate.totalCycles, 2000u);
    EXPECT_EQ(run.aggregate.issuedCycles, 1500u);
    // Sequential launches extend the kernel critical path.
    EXPECT_EQ(run.maxCycles, 1600u);
    // Same physical fleet: peak, never a sum.
    EXPECT_EQ(run.activeDpus, 2u);

    const LaunchProfile third = launchOf(
        {busyDpu(100, 80, 50), busyDpu(100, 80, 50),
         busyDpu(100, 80, 50)});
    run.add(third);
    EXPECT_EQ(run.activeDpus, 3u); // a busier launch raises the peak
    EXPECT_EQ(run.maxCycles, 1700u);
}

TEST(LaunchProfile, AddEmptyLaunchIsANoOp)
{
    LaunchProfile run = launchOf({busyDpu(1000, 700, 500)});
    run.add(LaunchProfile{});
    EXPECT_EQ(run.aggregate.totalCycles, 1000u);
    EXPECT_EQ(run.maxCycles, 1000u);
    EXPECT_EQ(run.activeDpus, 1u);
}

TEST(LaunchProfileDeath, RejectsAggregateBelowMaxCycles)
{
    LaunchProfile run;
    LaunchProfile bogus;
    bogus.maxCycles = 500; // never folded through add(DpuProfile)
    bogus.activeDpus = 1;
    EXPECT_DEATH(run.add(bogus), "aggregate DPU-cycles below");
}

TEST(LaunchProfileDeath, RejectsInstructionsWithoutActiveDpus)
{
    LaunchProfile run;
    LaunchProfile bogus;
    bogus.aggregate.totalCycles = 500;
    bogus.aggregate.instrByClass[static_cast<std::size_t>(
        OpClass::IntAdd)] = 100;
    bogus.activeDpus = 0; // inconsistent: hand-assembled profile
    EXPECT_DEATH(run.add(bogus), "must report active DPUs");
}
