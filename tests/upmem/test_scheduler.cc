/**
 * @file
 * Revolver-pipeline scheduler invariants: dispatch-gap enforcement,
 * stall accounting, DMA serialization, mutex exclusion, and barrier
 * semantics.
 */

#include <gtest/gtest.h>

#include "upmem/scheduler.hh"

using namespace alphapim;
using namespace alphapim::upmem;

namespace
{

DpuConfig
testConfig(unsigned tasklets = 4)
{
    DpuConfig cfg;
    cfg.tasklets = tasklets;
    return cfg;
}

Cycles
stall(const DpuProfile &p, StallReason r)
{
    return p.stallCycles[static_cast<std::size_t>(r)];
}

Cycles
allStalls(const DpuProfile &p)
{
    Cycles total = 0;
    for (auto c : p.stallCycles)
        total += c;
    return total;
}

} // namespace

TEST(Scheduler, SingleTaskletRevolverGap)
{
    const auto cfg = testConfig(1);
    RevolverScheduler sched(cfg);
    std::vector<TaskletTrace> traces(1);
    traces[0].ops(OpClass::IntAdd, 10);

    const auto profile = sched.run(traces);
    // 10 instructions, consecutive dispatches 11 cycles apart:
    // total = 9 * 11 + 1 cycles.
    EXPECT_EQ(profile.issuedCycles, 10u);
    EXPECT_EQ(profile.totalCycles, 9 * cfg.revolverGap + 1);
    EXPECT_EQ(stall(profile, StallReason::Revolver),
              9 * (cfg.revolverGap - 1));
}

TEST(Scheduler, EnoughTaskletsSaturatePipeline)
{
    // With >= revolverGap tasklets and identical work, every cycle
    // dispatches (modulo rare RF hazards).
    DpuConfig cfg;
    cfg.tasklets = 12;
    cfg.rfBankBits = 8; // make hazards vanishingly rare
    RevolverScheduler sched(cfg);
    std::vector<TaskletTrace> traces(12);
    for (auto &t : traces)
        t.ops(OpClass::IntAdd, 100);

    const auto profile = sched.run(traces);
    EXPECT_EQ(profile.issuedCycles, 1200u);
    EXPECT_GE(profile.issuedFraction(), 0.95);
}

TEST(Scheduler, CycleAccountingIsComplete)
{
    const auto cfg = testConfig(3);
    RevolverScheduler sched(cfg);
    std::vector<TaskletTrace> traces(3);
    traces[0].ops(OpClass::IntAdd, 20);
    traces[0].dmaRead(256);
    traces[0].ops(OpClass::Compare, 5);
    traces[1].ops(OpClass::Logic, 7);
    traces[1].dmaWrite(64);
    traces[2].ops(OpClass::Move, 30);

    const auto profile = sched.run(traces);
    EXPECT_EQ(profile.totalCycles,
              profile.issuedCycles + allStalls(profile));
}

TEST(Scheduler, DmaBlocksIssuingTasklet)
{
    const auto cfg = testConfig(1);
    RevolverScheduler sched(cfg);
    std::vector<TaskletTrace> traces(1);
    traces[0].dmaRead(1024);
    traces[0].ops(OpClass::IntAdd, 1);

    const auto profile = sched.run(traces);
    const auto dma_cycles =
        cfg.dmaSetupCycles +
        static_cast<Cycles>(1024 / cfg.dmaBytesPerCycle);
    // Dispatch DMA at cycle 0, the add at dma completion.
    EXPECT_EQ(profile.totalCycles, dma_cycles + 1);
    EXPECT_GT(stall(profile, StallReason::Memory), 0u);
}

TEST(Scheduler, DmaEngineSerializesTransfers)
{
    const auto cfg = testConfig(4);
    RevolverScheduler sched(cfg);
    std::vector<TaskletTrace> traces(4);
    for (auto &t : traces)
        t.dmaRead(2048);

    const auto profile = sched.run(traces);
    const Cycles occupancy =
        cfg.dmaEngineOverheadCycles +
        static_cast<Cycles>(2048 / cfg.dmaBytesPerCycle);
    // Four transfers through one engine occupy it back to back;
    // setup latency pipelines but occupancy serializes.
    EXPECT_GE(profile.totalCycles, 4 * occupancy);
    EXPECT_LT(profile.totalCycles,
              4 * (cfg.dmaSetupCycles + occupancy) + 100);
}

TEST(Scheduler, MutexProvidesExclusionAndSpins)
{
    const auto cfg = testConfig(2);
    RevolverScheduler sched(cfg);
    std::vector<TaskletTrace> traces(2);
    for (auto &t : traces) {
        t.mutexLock(0);
        t.ops(OpClass::IntAdd, 50);
        t.mutexUnlock(0);
    }

    const auto profile = sched.run(traces);
    // The loser spins: lock attempts exceed the 2 successful locks.
    const auto locks = profile.instrByClass[static_cast<std::size_t>(
        OpClass::MutexLock)];
    EXPECT_GT(locks, 2u);
    EXPECT_EQ(profile.instrByClass[static_cast<std::size_t>(
                  OpClass::MutexUnlock)],
              2u);
    // Critical sections serialize: at least 2 x 50 adds of latency.
    EXPECT_GE(profile.totalCycles, 2 * 49 * cfg.revolverGap);
}

TEST(Scheduler, BarrierWaitsForAllTasklets)
{
    const auto cfg = testConfig(3);
    RevolverScheduler sched(cfg);
    std::vector<TaskletTrace> traces(3);
    traces[0].ops(OpClass::IntAdd, 1);
    traces[0].barrier(0);
    traces[0].ops(OpClass::Compare, 1);
    traces[1].ops(OpClass::IntAdd, 200); // straggler
    traces[1].barrier(0);
    traces[1].ops(OpClass::Compare, 1);
    traces[2].ops(OpClass::IntAdd, 1);
    traces[2].barrier(0);
    traces[2].ops(OpClass::Compare, 1);

    const auto profile = sched.run(traces);
    // All three compares dispatch after the straggler arrives:
    // total must exceed the straggler's compute alone.
    EXPECT_GE(profile.totalCycles, 199 * cfg.revolverGap);
    EXPECT_EQ(profile.instrByClass[static_cast<std::size_t>(
                  OpClass::Barrier)],
              3u);
}

TEST(Scheduler, RepeatedBarriersWork)
{
    const auto cfg = testConfig(2);
    RevolverScheduler sched(cfg);
    std::vector<TaskletTrace> traces(2);
    for (auto &t : traces) {
        t.ops(OpClass::IntAdd, 3);
        t.barrier(1);
        t.ops(OpClass::IntAdd, 3);
        t.barrier(1);
        t.ops(OpClass::IntAdd, 3);
    }
    const auto profile = sched.run(traces);
    EXPECT_EQ(profile.instrByClass[static_cast<std::size_t>(
                  OpClass::Barrier)],
              4u);
    EXPECT_EQ(profile.instrByClass[static_cast<std::size_t>(
                  OpClass::IntAdd)],
              18u);
}

TEST(Scheduler, EmptyTracesAreAllowed)
{
    const auto cfg = testConfig(4);
    RevolverScheduler sched(cfg);
    std::vector<TaskletTrace> traces(4);
    traces[2].ops(OpClass::IntAdd, 5);

    const auto profile = sched.run(traces);
    EXPECT_EQ(profile.issuedCycles, 5u);
}

TEST(Scheduler, AllEmptyProducesZeroProfile)
{
    const auto cfg = testConfig(4);
    RevolverScheduler sched(cfg);
    std::vector<TaskletTrace> traces(4);
    const auto profile = sched.run(traces);
    EXPECT_EQ(profile.totalCycles, 0u);
    EXPECT_EQ(profile.totalInstructions(), 0u);
}

TEST(Scheduler, ActiveThreadsBoundedByTaskletCount)
{
    const auto cfg = testConfig(8);
    RevolverScheduler sched(cfg);
    std::vector<TaskletTrace> traces(8);
    for (auto &t : traces)
        t.ops(OpClass::IntAdd, 64);
    const auto profile = sched.run(traces);
    EXPECT_GT(profile.avgActiveThreads(), 1.0);
    EXPECT_LE(profile.avgActiveThreads(), 8.0 + 1e-9);
}

TEST(Scheduler, InstructionMixMatchesTrace)
{
    const auto cfg = testConfig(2);
    RevolverScheduler sched(cfg);
    std::vector<TaskletTrace> traces(2);
    traces[0].ops(OpClass::FloatMul, 10);
    traces[0].ops(OpClass::LoadWram, 4);
    traces[1].ops(OpClass::StoreWram, 6);
    traces[1].dmaRead(128);

    const auto profile = sched.run(traces);
    EXPECT_EQ(profile.instrByClass[static_cast<std::size_t>(
                  OpClass::FloatMul)],
              10u);
    EXPECT_EQ(profile.instructionsInCategory(OpCategory::Scratchpad),
              10u);
    EXPECT_EQ(profile.instructionsInCategory(OpCategory::Dma), 1u);
}

TEST(Scheduler, DeterministicAcrossRuns)
{
    const auto cfg = testConfig(6);
    RevolverScheduler sched(cfg);
    std::vector<TaskletTrace> traces(6);
    for (unsigned t = 0; t < 6; ++t) {
        traces[t].ops(OpClass::IntAdd, 10 + t * 3);
        traces[t].dmaRead(64 * (t + 1));
        traces[t].mutexLock(t % 2);
        traces[t].ops(OpClass::Compare, 5);
        traces[t].mutexUnlock(t % 2);
        traces[t].barrier(0);
    }
    const auto p1 = sched.run(traces);
    const auto p2 = sched.run(traces);
    EXPECT_EQ(p1.totalCycles, p2.totalCycles);
    EXPECT_EQ(p1.issuedCycles, p2.issuedCycles);
    EXPECT_EQ(p1.activeThreadCycles, p2.activeThreadCycles);
}
