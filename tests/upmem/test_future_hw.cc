/** @file Future-hardware knobs: each must strictly help its target
 * bottleneck and leave functional behaviour untouched. */

#include <gtest/gtest.h>

#include "upmem/scheduler.hh"
#include "upmem/transfer_model.hh"

using namespace alphapim;
using namespace alphapim::upmem;

namespace
{

std::vector<TaskletTrace>
dmaHeavyTraces(unsigned tasklets)
{
    std::vector<TaskletTrace> traces(tasklets);
    for (auto &t : traces) {
        for (int i = 0; i < 8; ++i) {
            t.dmaRead(1024);
            t.ops(OpClass::IntAdd, 20);
        }
    }
    return traces;
}

std::vector<TaskletTrace>
contentionTraces(unsigned tasklets)
{
    std::vector<TaskletTrace> traces(tasklets);
    for (auto &t : traces) {
        for (int i = 0; i < 20; ++i) {
            t.mutexLock(0);
            t.ops(OpClass::IntAdd, 4);
            t.mutexUnlock(0);
        }
    }
    return traces;
}

} // namespace

TEST(FutureHw, NonBlockingDmaReducesCycles)
{
    DpuConfig base;
    base.tasklets = 4;
    DpuConfig nb = base;
    nb.nonBlockingDma = true;

    const auto traces = dmaHeavyTraces(4);
    const auto p_base = RevolverScheduler(base).run(traces);
    const auto p_nb = RevolverScheduler(nb).run(traces);
    EXPECT_LT(p_nb.totalCycles, p_base.totalCycles);
    // Same instructions execute either way.
    EXPECT_EQ(p_nb.totalInstructions(), p_base.totalInstructions());
}

TEST(FutureHw, NonBlockingDmaStillBoundedByEngineBandwidth)
{
    DpuConfig nb;
    nb.tasklets = 2;
    nb.nonBlockingDma = true;
    std::vector<TaskletTrace> traces(2);
    traces[0].dmaRead(65536);
    traces[1].dmaRead(65536);
    const auto p = RevolverScheduler(nb).run(traces);
    // Two 64 KiB transfers cannot finish faster than the engine
    // streams them.
    EXPECT_GE(p.totalCycles,
              static_cast<Cycles>(2 * 65536 / nb.dmaBytesPerCycle));
}

TEST(FutureHw, HardwareAtomicsRemoveSpinning)
{
    DpuConfig base;
    base.tasklets = 8;
    DpuConfig atomics = base;
    atomics.hardwareAtomics = true;

    const auto traces = contentionTraces(8);
    const auto p_base = RevolverScheduler(base).run(traces);
    const auto p_atomic = RevolverScheduler(atomics).run(traces);
    // No spin retries: exactly one lock instruction per acquire.
    EXPECT_EQ(p_atomic.instrByClass[static_cast<std::size_t>(
                  OpClass::MutexLock)],
              8u * 20u);
    EXPECT_GT(p_base.instrByClass[static_cast<std::size_t>(
                  OpClass::MutexLock)],
              8u * 20u);
    EXPECT_LE(p_atomic.totalCycles, p_base.totalCycles);
}

TEST(FutureHw, ShorterRevolverGapHelpsLowParallelism)
{
    DpuConfig slow;
    slow.tasklets = 2;
    DpuConfig fast = slow;
    fast.revolverGap = 4;

    std::vector<TaskletTrace> traces(2);
    traces[0].ops(OpClass::IntAdd, 500);
    traces[1].ops(OpClass::Compare, 500);
    const auto p_slow = RevolverScheduler(slow).run(traces);
    const auto p_fast = RevolverScheduler(fast).run(traces);
    EXPECT_LT(p_fast.totalCycles, p_slow.totalCycles);
}

TEST(FutureHw, InterconnectBeatsHostRoundTrip)
{
    TransferConfig host;
    TransferConfig direct = host;
    direct.directInterconnect = true;

    const TransferModel via_host(host);
    const TransferModel via_link(direct);
    const auto scatter_host = via_host.uniformScatter(
        1 << 16, 2048, TransferDirection::HostToDpu);
    const auto scatter_link = via_link.uniformScatter(
        1 << 16, 2048, TransferDirection::HostToDpu);
    EXPECT_LT(scatter_link, scatter_host);

    const auto bcast_host = via_host.broadcast(1 << 20, 2048);
    const auto bcast_link = via_link.broadcast(1 << 20, 2048);
    EXPECT_LT(bcast_link, bcast_host);
}

TEST(FutureHw, InterconnectScalesWithPerDpuBytesOnly)
{
    TransferConfig direct;
    direct.directInterconnect = true;
    const TransferModel model(direct);
    const auto few = model.uniformScatter(
        4096, 64, TransferDirection::HostToDpu);
    const auto many = model.uniformScatter(
        4096, 2048, TransferDirection::HostToDpu);
    EXPECT_NEAR(few, many, 1e-12); // fully parallel exchange
}
