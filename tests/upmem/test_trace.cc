/** @file Trace recording and run-length encoding. */

#include <gtest/gtest.h>

#include "upmem/scheduler.hh"
#include "upmem/tasklet_ctx.hh"
#include "upmem/trace.hh"

using namespace alphapim;
using namespace alphapim::upmem;

TEST(Trace, RunLengthMergesSameClass)
{
    TaskletTrace t;
    t.ops(OpClass::IntAdd, 3);
    t.ops(OpClass::IntAdd, 2);
    ASSERT_EQ(t.records().size(), 1u);
    EXPECT_EQ(t.records()[0].count, 5u);
    EXPECT_EQ(t.instructionCount(), 5u);
}

TEST(Trace, DifferentClassesStaySeparate)
{
    TaskletTrace t;
    t.ops(OpClass::IntAdd, 3);
    t.ops(OpClass::Compare, 1);
    t.ops(OpClass::IntAdd, 1);
    EXPECT_EQ(t.records().size(), 3u);
}

TEST(Trace, ZeroCountIsIgnored)
{
    TaskletTrace t;
    t.ops(OpClass::IntAdd, 0);
    EXPECT_TRUE(t.empty());
}

TEST(Trace, SyncAndDmaRecords)
{
    TaskletTrace t;
    t.dmaRead(128);
    t.mutexLock(3);
    t.mutexUnlock(3);
    t.barrier(1);
    t.dmaWrite(64);
    ASSERT_EQ(t.records().size(), 5u);
    EXPECT_EQ(t.records()[0].kind, RecordKind::Dma);
    EXPECT_EQ(t.records()[0].arg, 128u);
    EXPECT_EQ(t.records()[1].count, 1u); // lock
    EXPECT_EQ(t.records()[2].count, 0u); // unlock
    EXPECT_EQ(t.records()[3].kind, RecordKind::Barrier);
    EXPECT_EQ(t.instructionCount(), 5u);
}

TEST(TaskletCtx, FloatOpsAreExpanded)
{
    DpuConfig cfg;
    TaskletTrace t;
    TaskletCtx ctx(cfg, t);
    ctx.op(OpClass::FloatMul, 2);
    ctx.op(OpClass::FloatAdd, 1);
    ctx.op(OpClass::IntMul, 1);
    ctx.op(OpClass::IntAdd, 1);
    EXPECT_EQ(t.instructionCount(),
              2 * cfg.floatMulInstrs + cfg.floatAddInstrs +
                  cfg.intMulInstrs + 1);
}

TEST(TaskletCtx, StreamingChunksDma)
{
    DpuConfig cfg;
    cfg.wramChunkBytes = 256;
    TaskletTrace t;
    TaskletCtx ctx(cfg, t);
    ctx.streamFromMram(1000);
    // ceil(1000/256) = 4 DMA records (plus control overhead).
    unsigned dmas = 0;
    Bytes bytes = 0;
    for (const auto &r : t.records()) {
        if (r.kind == RecordKind::Dma) {
            ++dmas;
            bytes += r.arg;
        }
    }
    EXPECT_EQ(dmas, 4u);
    EXPECT_EQ(bytes, 1000u);
}

TEST(TaskletCtx, StreamToMramChunksToo)
{
    DpuConfig cfg;
    cfg.wramChunkBytes = 512;
    TaskletTrace t;
    TaskletCtx ctx(cfg, t);
    ctx.streamToMram(512);
    unsigned writes = 0;
    for (const auto &r : t.records()) {
        if (r.kind == RecordKind::Dma &&
            r.cls == OpClass::DmaWrite) {
            ++writes;
        }
    }
    EXPECT_EQ(writes, 1u);
}

TEST(TaskletCtx, RandomMramAccessRoundsToDmaGranularity)
{
    DpuConfig cfg;
    TaskletTrace t;
    TaskletCtx ctx(cfg, t);
    ctx.randomMramRead(5);
    ctx.randomMramWrite(12);
    ctx.randomMramRead(dmaMaxBytes);
    ASSERT_EQ(t.records().size(), 3u);
    EXPECT_EQ(t.records()[0].arg, 8u);
    EXPECT_EQ(t.records()[1].arg, 16u);
    EXPECT_EQ(t.records()[2].arg, dmaMaxBytes);
}

TEST(TaskletCtx, StreamChunksStayDmaAligned)
{
    DpuConfig cfg;
    cfg.wramChunkBytes = 100; // not a multiple of 8
    TaskletTrace t;
    TaskletCtx ctx(cfg, t);
    ctx.streamFromMram(250);
    Bytes total = 0;
    for (const auto &r : t.records()) {
        if (r.kind != RecordKind::Dma)
            continue;
        EXPECT_EQ(r.arg % dmaGranularity, 0u);
        EXPECT_LE(r.arg, 96u); // chunk cap: wramChunkBytes & ~7
        total += r.arg;
    }
    EXPECT_GE(total, 250u);
    EXPECT_LT(total, 250u + dmaGranularity);
}

TEST(TaskletCtx, RoundedDmaMatchesCycleModel)
{
    // A rounded-up random access must cost exactly what an explicit
    // granularity-sized DMA costs in the replay model.
    DpuConfig cfg;
    std::vector<TaskletTrace> a(cfg.tasklets), b(cfg.tasklets);
    TaskletCtx ctx(cfg, a[0]);
    ctx.randomMramRead(5);
    b[0].dmaRead(8);
    const RevolverScheduler sched(cfg);
    EXPECT_EQ(sched.run(a).totalCycles, sched.run(b).totalCycles);
}

TEST(TaskletCtx, AddressedStreamAdvancesChunkAddresses)
{
    DpuConfig cfg;
    cfg.wramChunkBytes = 256;
    TaskletTrace t;
    TaskletCtx ctx(cfg, t);
    ctx.streamFromMram(600, 0x1000);
    std::uint64_t expect = 0x1000;
    for (const auto &r : t.records()) {
        if (r.kind != RecordKind::Dma)
            continue;
        ASSERT_TRUE(r.addressed());
        EXPECT_EQ(r.addr, expect);
        expect += r.arg;
    }
}

TEST(Trace, AddressedWramAccessKeepsAddress)
{
    TaskletTrace t;
    t.wramAccess(OpClass::LoadWram, 2, 0x4000, 8);
    t.ops(OpClass::LoadWram, 3); // must not merge into it
    ASSERT_EQ(t.records().size(), 2u);
    EXPECT_TRUE(t.records()[0].addressed());
    EXPECT_EQ(t.records()[0].addr, 0x4000u);
    EXPECT_EQ(t.records()[0].arg, 8u);
    EXPECT_FALSE(t.records()[1].addressed());
}

TEST(OpTaxonomy, CategoriesAreStable)
{
    EXPECT_EQ(opCategory(OpClass::FloatMul), OpCategory::Arithmetic);
    EXPECT_EQ(opCategory(OpClass::LoadWram), OpCategory::Scratchpad);
    EXPECT_EQ(opCategory(OpClass::DmaRead), OpCategory::Dma);
    EXPECT_EQ(opCategory(OpClass::MutexLock), OpCategory::Sync);
    EXPECT_EQ(opCategory(OpClass::Barrier), OpCategory::Sync);
    EXPECT_EQ(opCategory(OpClass::Control), OpCategory::Control);
}

TEST(OpTaxonomy, AluClassification)
{
    EXPECT_TRUE(isAluClass(OpClass::IntAdd));
    EXPECT_TRUE(isAluClass(OpClass::Compare));
    EXPECT_FALSE(isAluClass(OpClass::DmaRead));
    EXPECT_FALSE(isAluClass(OpClass::MutexLock));
    EXPECT_FALSE(isAluClass(OpClass::LoadWram));
}

TEST(OpTaxonomy, NamesExist)
{
    for (unsigned c = 0; c < numOpClasses; ++c)
        EXPECT_STRNE(opClassName(static_cast<OpClass>(c)), "unknown");
    for (unsigned c = 0; c < numOpCategories; ++c) {
        EXPECT_STRNE(opCategoryName(static_cast<OpCategory>(c)),
                     "unknown");
    }
}
