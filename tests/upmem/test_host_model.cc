/** @file Host merge / convergence cost model. */

#include <gtest/gtest.h>

#include "upmem/host_model.hh"

using namespace alphapim;
using namespace alphapim::upmem;

TEST(HostModel, MergeHasFloorOverhead)
{
    HostConfig cfg;
    HostModel model(cfg);
    EXPECT_GE(model.mergeTime(0, 0), cfg.passOverhead);
}

TEST(HostModel, MergeMonotonicInBytesAndOps)
{
    HostConfig cfg;
    HostModel model(cfg);
    EXPECT_LT(model.mergeTime(1 << 10, 100),
              model.mergeTime(1 << 24, 100));
    EXPECT_LT(model.mergeTime(1 << 10, 100),
              model.mergeTime(1 << 10, 1'000'000'000ull));
}

TEST(HostModel, MoreCoresMergeFaster)
{
    HostConfig few;
    few.cores = 2;
    HostConfig many;
    many.cores = 32;
    HostModel slow(few), fast(many);
    const std::uint64_t ops = 1'000'000'000ull;
    EXPECT_GT(slow.mergeTime(0, ops), fast.mergeTime(0, ops));
}

TEST(HostModel, ConvergenceScalesWithVector)
{
    HostConfig cfg;
    HostModel model(cfg);
    EXPECT_LT(model.convergenceTime(1 << 10),
              model.convergenceTime(1 << 26));
}
