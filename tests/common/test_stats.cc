/** @file RunningStats / geometric mean / histogram behaviour. */

#include <cmath>

#include <gtest/gtest.h>

#include "common/stats.hh"

using namespace alphapim;

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleSample)
{
    RunningStats s;
    s.add(4.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.5);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 4.5);
    EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStats, KnownPopulation)
{
    RunningStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0); // textbook population example
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, LargeShiftedValuesStayStable)
{
    RunningStats s;
    const double base = 1e12;
    for (int i = 0; i < 1000; ++i)
        s.add(base + (i % 10));
    EXPECT_NEAR(s.mean(), base + 4.5, 1e-3);
    EXPECT_NEAR(s.stddev(), 2.872, 0.01);
}

TEST(GeometricMean, KnownValues)
{
    EXPECT_DOUBLE_EQ(geometricMean({4.0, 9.0}), 6.0);
    EXPECT_NEAR(geometricMean({1.0, 10.0, 100.0}), 10.0, 1e-9);
}

TEST(GeometricMean, SingleValue)
{
    EXPECT_DOUBLE_EQ(geometricMean({3.5}), 3.5);
}

TEST(Histogram, BinsAndMean)
{
    Histogram h(4, 8.0);
    h.add(1.0);
    h.add(3.0);
    h.add(5.0);
    h.add(7.0);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(h.binWeight(i), 1.0);
    EXPECT_DOUBLE_EQ(h.mean(), 4.0);
}

TEST(Histogram, OverflowLandsInLastBin)
{
    Histogram h(4, 8.0);
    h.add(100.0);
    EXPECT_DOUBLE_EQ(h.binWeight(3), 1.0);
}

TEST(Histogram, WeightedSamples)
{
    Histogram h(2, 2.0);
    h.add(0.5, 3.0);
    h.add(1.5, 1.0);
    EXPECT_DOUBLE_EQ(h.binWeight(0), 3.0);
    EXPECT_DOUBLE_EQ(h.binWeight(1), 1.0);
    EXPECT_DOUBLE_EQ(h.totalWeight(), 4.0);
    EXPECT_DOUBLE_EQ(h.mean(), (0.5 * 3 + 1.5) / 4.0);
}

TEST(Percentile, EmptyIsNan)
{
    EXPECT_TRUE(std::isnan(percentile({}, 50.0)));
}

TEST(Percentile, SingleSampleAtEveryP)
{
    for (double p : {0.0, 50.0, 95.0, 100.0})
        EXPECT_DOUBLE_EQ(percentile({7.0}, p), 7.0);
}

TEST(Percentile, MedianInterpolatesEvenCount)
{
    EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0}, 50.0), 2.5);
}

TEST(Percentile, Type7MatchesNumpy)
{
    // numpy.percentile([15, 20, 35, 40, 50], [5, 40, 95])
    const std::vector<double> v = {15.0, 20.0, 35.0, 40.0, 50.0};
    EXPECT_DOUBLE_EQ(percentile(v, 5.0), 16.0);
    EXPECT_DOUBLE_EQ(percentile(v, 40.0), 29.0);
    EXPECT_DOUBLE_EQ(percentile(v, 95.0), 48.0);
}

TEST(Percentile, TailP999MatchesNumpy)
{
    // numpy.percentile(range(1, 1001), 99.9) == 999.001: the p999
    // the serving subsystem reports must resolve the last-sample
    // tail, not collapse onto p100.
    std::vector<double> v(1000);
    for (std::size_t i = 0; i < v.size(); ++i)
        v[i] = static_cast<double>(i + 1);
    EXPECT_DOUBLE_EQ(percentile(v, 99.9), 999.001);
    EXPECT_LT(percentile(v, 99.9), percentile(v, 100.0));
    EXPECT_GT(percentile(v, 99.9), percentile(v, 99.0));
}

TEST(Percentile, UnsortedInputAndExtremes)
{
    const std::vector<double> v = {9.0, 1.0, 5.0, 3.0, 7.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 9.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 5.0);
}
