/** @file Text table rendering. */

#include <gtest/gtest.h>

#include "common/table.hh"

using namespace alphapim;

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable t("demo");
    t.setHeader({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"beta", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TextTable, ColumnsAreAligned)
{
    TextTable t;
    t.setHeader({"a", "b"});
    t.addRow({"xxxx", "1"});
    t.addRow({"y", "2"});
    const std::string out = t.render();
    // Both value cells start at the same column.
    const auto l1 = out.find("xxxx  1");
    const auto l2 = out.find("y     2");
    EXPECT_NE(l1, std::string::npos);
    EXPECT_NE(l2, std::string::npos);
}

TEST(TextTable, SeparatorRendered)
{
    TextTable t;
    t.setHeader({"a"});
    t.addRow({"1"});
    t.addSeparator();
    t.addRow({"2"});
    const std::string out = t.render();
    // Header separator plus the explicit one.
    std::size_t dashes = 0, pos = 0;
    while ((pos = out.find("-\n", pos)) != std::string::npos) {
        ++dashes;
        ++pos;
    }
    EXPECT_GE(dashes, 2u);
}

TEST(TextTable, NumberFormatting)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
    EXPECT_EQ(TextTable::pct(0.1234, 1), "12.3%");
}
