/** @file parallelFor coverage and independence. */

#include <atomic>
#include <numeric>

#include <gtest/gtest.h>

#include "common/parallel.hh"

using namespace alphapim;

TEST(ParallelFor, VisitsEveryIndexOnce)
{
    std::vector<std::atomic<int>> hits(1000);
    parallelFor(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroCountIsNoop)
{
    bool called = false;
    parallelFor(0, [&](std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ParallelFor, SmallCountsRunSerially)
{
    std::vector<int> order;
    parallelFor(3, [&](std::size_t i) {
        order.push_back(static_cast<int>(i));
    });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(ParallelFor, ResultsAreDeterministicPerSlot)
{
    std::vector<std::uint64_t> out(500);
    parallelFor(500, [&](std::size_t i) { out[i] = i * i; });
    for (std::size_t i = 0; i < 500; ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ParallelThreadLimit, UnsetFallsBackToHardware)
{
    EXPECT_EQ(parallelThreadLimit(nullptr, 8), 8u);
    EXPECT_EQ(parallelThreadLimit(nullptr, 0), 1u);
}

TEST(ParallelThreadLimit, PositiveIntegerLowersLimit)
{
    EXPECT_EQ(parallelThreadLimit("1", 8), 1u);
    EXPECT_EQ(parallelThreadLimit("4", 8), 4u);
}

TEST(ParallelThreadLimit, CannotRaiseAboveHardware)
{
    EXPECT_EQ(parallelThreadLimit("64", 8), 8u);
    EXPECT_EQ(parallelThreadLimit("8", 8), 8u);
}

TEST(ParallelThreadLimit, GarbageAndZeroAreIgnored)
{
    EXPECT_EQ(parallelThreadLimit("", 8), 8u);
    EXPECT_EQ(parallelThreadLimit("0", 8), 8u);
    EXPECT_EQ(parallelThreadLimit("abc", 8), 8u);
    EXPECT_EQ(parallelThreadLimit("4x", 8), 8u);
    EXPECT_EQ(parallelThreadLimit("-2", 8), 8u);
}

TEST(ParallelThreadLimit, SerialOverrideStillVisitsEverything)
{
    // ALPHA_PIM_THREADS=1 routes through the same serial path as
    // small counts; exercise it directly via the parsed limit.
    ASSERT_EQ(parallelThreadLimit("1", 8), 1u);
    std::vector<int> order;
    parallelFor(3, [&](std::size_t i) {
        order.push_back(static_cast<int>(i));
    });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}
