/** @file Log level plumbing and assertion macro. */

#include <gtest/gtest.h>

#include "common/logging.hh"

using namespace alphapim;

TEST(Logging, LevelRoundTrip)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    setLogLevel(LogLevel::Verbose);
    EXPECT_EQ(logLevel(), LogLevel::Verbose);
    setLogLevel(before);
}

TEST(Logging, WarnAndInformDoNotCrash)
{
    setLogLevel(LogLevel::Silent);
    warn("suppressed %d", 1);
    inform("suppressed %s", "too");
    debugLog("suppressed");
    setLogLevel(LogLevel::Normal);
}

TEST(Logging, AssertPassesOnTrue)
{
    ALPHA_ASSERT(1 + 1 == 2, "arithmetic works");
    SUCCEED();
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 42), "boom 42");
}

TEST(LoggingDeath, AssertPanicsOnFalse)
{
    EXPECT_DEATH(ALPHA_ASSERT(false, "must fail"), "must fail");
}

TEST(LoggingDeath, FatalExits)
{
    EXPECT_EXIT(fatal("bad config"),
                testing::ExitedWithCode(1), "bad config");
}
