/** @file Log level plumbing and assertion macro. */

#include <cstdlib>

#include <gtest/gtest.h>

#include "common/logging.hh"

using namespace alphapim;

TEST(Logging, LevelRoundTrip)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    setLogLevel(LogLevel::Verbose);
    EXPECT_EQ(logLevel(), LogLevel::Verbose);
    setLogLevel(before);
}

TEST(Logging, LevelByName)
{
    const LogLevel before = logLevel();
    EXPECT_TRUE(setLogLevelByName("silent"));
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    EXPECT_TRUE(setLogLevelByName("verbose"));
    EXPECT_EQ(logLevel(), LogLevel::Verbose);
    EXPECT_TRUE(setLogLevelByName("normal"));
    EXPECT_EQ(logLevel(), LogLevel::Normal);
    // Unknown names leave the level untouched.
    EXPECT_FALSE(setLogLevelByName("chatty"));
    EXPECT_EQ(logLevel(), LogLevel::Normal);
    setLogLevel(before);
}

TEST(Logging, LevelFromEnvironment)
{
    const LogLevel before = logLevel();
    ::setenv("ALPHA_PIM_LOG", "silent", 1);
    refreshLogLevelFromEnv();
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    ::setenv("ALPHA_PIM_LOG", "verbose", 1);
    refreshLogLevelFromEnv();
    EXPECT_EQ(logLevel(), LogLevel::Verbose);
    // An unset variable leaves the current level alone.
    ::unsetenv("ALPHA_PIM_LOG");
    refreshLogLevelFromEnv();
    EXPECT_EQ(logLevel(), LogLevel::Verbose);
    setLogLevel(before);
}

TEST(Logging, WarnAndInformDoNotCrash)
{
    setLogLevel(LogLevel::Silent);
    warn("suppressed %d", 1);
    inform("suppressed %s", "too");
    debugLog("test", "suppressed");
    setLogLevel(LogLevel::Normal);
}

TEST(Logging, AssertPassesOnTrue)
{
    ALPHA_ASSERT(1 + 1 == 2, "arithmetic works");
    SUCCEED();
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 42), "boom 42");
}

TEST(LoggingDeath, AssertPanicsOnFalse)
{
    EXPECT_DEATH(ALPHA_ASSERT(false, "must fail"), "must fail");
}

TEST(LoggingDeath, FatalExits)
{
    EXPECT_EXIT(fatal("bad config"),
                testing::ExitedWithCode(1), "bad config");
}
