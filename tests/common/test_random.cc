/** @file Deterministic RNG behaviour and distribution sanity. */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "common/stats.hh"

using namespace alphapim;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    unsigned same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3u);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Rng, BoundedCoversRange)
{
    Rng rng(11);
    std::vector<bool> seen(10, false);
    for (int i = 0; i < 2000; ++i)
        seen[rng.nextBounded(10)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, GaussianMoments)
{
    Rng rng(5);
    RunningStats stats;
    for (int i = 0; i < 50000; ++i)
        stats.add(rng.nextGaussian());
    EXPECT_NEAR(stats.mean(), 0.0, 0.02);
    EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, LognormalMatchedMoments)
{
    // mu/sigma chosen so the lognormal has mean ~6, std ~5.
    const double mean = 6.0, std = 5.0;
    const double ratio = std / mean;
    const double sigma2 = std::log(1 + ratio * ratio);
    const double mu = std::log(mean) - sigma2 / 2;
    Rng rng(9);
    RunningStats stats;
    for (int i = 0; i < 200000; ++i)
        stats.add(rng.nextLognormal(mu, std::sqrt(sigma2)));
    EXPECT_NEAR(stats.mean(), mean, 0.15);
    EXPECT_NEAR(stats.stddev(), std, 0.5);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += rng.nextBernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, SplitStreamsAreIndependent)
{
    Rng parent(21);
    Rng child = parent.split();
    unsigned same = 0;
    for (int i = 0; i < 100; ++i)
        same += parent.next() == child.next() ? 1 : 0;
    EXPECT_LT(same, 3u);
}
