/**
 * @file
 * JSON writer/parser tests: documents built with JsonWriter must
 * parse back with JsonValue, escaping must round-trip, and malformed
 * input must be rejected with an error instead of crashing.
 */

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "telemetry/json.hh"

using namespace alphapim::telemetry;

TEST(JsonWriter, FlatObject)
{
    JsonWriter w;
    w.beginObject();
    w.key("name").value("bfs");
    w.key("count").value(std::uint64_t{42});
    w.key("ratio").value(0.5);
    w.key("ok").value(true);
    w.key("none").null();
    w.endObject();
    EXPECT_EQ(w.str(), "{\"name\":\"bfs\",\"count\":42,"
                       "\"ratio\":0.5,\"ok\":true,\"none\":null}");
}

TEST(JsonWriter, NestedStructuresRoundTrip)
{
    JsonWriter w;
    w.beginObject();
    w.key("events").beginArray();
    for (int i = 0; i < 3; ++i) {
        w.beginObject();
        w.key("id").value(static_cast<std::int64_t>(-i));
        w.key("args").beginObject();
        w.key("x").value(static_cast<double>(i) / 3.0);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();

    JsonValue root;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(w.str(), root, &error)) << error;
    const JsonValue *events = root.find("events");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    ASSERT_EQ(events->items().size(), 3u);
    const JsonValue *id = events->items()[2].find("id");
    ASSERT_NE(id, nullptr);
    EXPECT_DOUBLE_EQ(id->asNumber(), -2.0);
    const JsonValue *args = events->items()[1].find("args");
    ASSERT_NE(args, nullptr);
    const JsonValue *x = args->find("x");
    ASSERT_NE(x, nullptr);
    EXPECT_DOUBLE_EQ(x->asNumber(), 1.0 / 3.0);
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters)
{
    JsonWriter w;
    w.beginArray();
    w.value("a\"b\\c\n\t\x01z");
    w.endArray();

    JsonValue root;
    ASSERT_TRUE(JsonValue::parse(w.str(), root, nullptr));
    ASSERT_TRUE(root.isArray());
    ASSERT_EQ(root.items().size(), 1u);
    EXPECT_EQ(root.items()[0].asString(), "a\"b\\c\n\t\x01z");
}

TEST(JsonWriter, DoublesRoundTripExactly)
{
    const double samples[] = {0.0, -0.0, 1.0, -1.5, 1e-300, 1e300,
                              0.1, 1.0 / 3.0, 12345.6789};
    for (const double v : samples) {
        JsonWriter w;
        w.beginArray();
        w.value(v);
        w.endArray();
        JsonValue root;
        ASSERT_TRUE(JsonValue::parse(w.str(), root, nullptr));
        EXPECT_EQ(root.items()[0].asNumber(), v) << w.str();
    }
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull)
{
    JsonWriter w;
    w.beginArray();
    w.value(std::numeric_limits<double>::quiet_NaN());
    w.value(std::numeric_limits<double>::infinity());
    w.endArray();
    EXPECT_EQ(w.str(), "[null,null]");
}

TEST(JsonWriter, RawValueSplicesFragment)
{
    JsonWriter w;
    w.beginObject();
    w.key("inner").rawValue("{\"a\":1}");
    w.endObject();
    JsonValue root;
    ASSERT_TRUE(JsonValue::parse(w.str(), root, nullptr));
    const JsonValue *inner = root.find("inner");
    ASSERT_NE(inner, nullptr);
    ASSERT_TRUE(inner->isObject());
    EXPECT_DOUBLE_EQ(inner->find("a")->asNumber(), 1.0);
}

TEST(JsonValue, ParsesLiteralsAndWhitespace)
{
    JsonValue root;
    ASSERT_TRUE(
        JsonValue::parse(" { \"a\" : [ true , false , null ] } ",
                         root, nullptr));
    const JsonValue *a = root.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->items().size(), 3u);
    EXPECT_TRUE(a->items()[0].asBool());
    EXPECT_FALSE(a->items()[1].asBool());
    EXPECT_TRUE(a->items()[2].isNull());
}

TEST(JsonValue, RejectsMalformedInput)
{
    const char *bad[] = {
        "",          "{",           "[1,]",       "{\"a\":}",
        "{\"a\" 1}", "\"unclosed",  "[1 2]",      "nul",
        "{]",        "[1] trailing"};
    for (const char *text : bad) {
        JsonValue root;
        std::string error;
        EXPECT_FALSE(JsonValue::parse(text, root, &error)) << text;
        EXPECT_FALSE(error.empty()) << text;
    }
}

TEST(JsonValue, ParsesUnicodeEscapes)
{
    JsonValue root;
    ASSERT_TRUE(JsonValue::parse("[\"\\u0041\\u00e9\"]", root,
                                 nullptr));
    EXPECT_EQ(root.items()[0].asString(), "A\xc3\xa9");
}

TEST(JsonValue, FindOnNonObjectReturnsNull)
{
    JsonValue root;
    ASSERT_TRUE(JsonValue::parse("[1,2]", root, nullptr));
    EXPECT_EQ(root.find("a"), nullptr);
}
