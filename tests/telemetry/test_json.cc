/**
 * @file
 * JSON writer/parser tests: documents built with JsonWriter must
 * parse back with JsonValue, escaping must round-trip, and malformed
 * input must be rejected with an error instead of crashing.
 */

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "telemetry/json.hh"

using namespace alphapim::telemetry;

TEST(JsonWriter, FlatObject)
{
    JsonWriter w;
    w.beginObject();
    w.key("name").value("bfs");
    w.key("count").value(std::uint64_t{42});
    w.key("ratio").value(0.5);
    w.key("ok").value(true);
    w.key("none").null();
    w.endObject();
    EXPECT_EQ(w.str(), "{\"name\":\"bfs\",\"count\":42,"
                       "\"ratio\":0.5,\"ok\":true,\"none\":null}");
}

TEST(JsonWriter, NestedStructuresRoundTrip)
{
    JsonWriter w;
    w.beginObject();
    w.key("events").beginArray();
    for (int i = 0; i < 3; ++i) {
        w.beginObject();
        w.key("id").value(static_cast<std::int64_t>(-i));
        w.key("args").beginObject();
        w.key("x").value(static_cast<double>(i) / 3.0);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();

    JsonValue root;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(w.str(), root, &error)) << error;
    const JsonValue *events = root.find("events");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    ASSERT_EQ(events->items().size(), 3u);
    const JsonValue *id = events->items()[2].find("id");
    ASSERT_NE(id, nullptr);
    EXPECT_DOUBLE_EQ(id->asNumber(), -2.0);
    const JsonValue *args = events->items()[1].find("args");
    ASSERT_NE(args, nullptr);
    const JsonValue *x = args->find("x");
    ASSERT_NE(x, nullptr);
    EXPECT_DOUBLE_EQ(x->asNumber(), 1.0 / 3.0);
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters)
{
    JsonWriter w;
    w.beginArray();
    w.value("a\"b\\c\n\t\x01z");
    w.endArray();

    JsonValue root;
    ASSERT_TRUE(JsonValue::parse(w.str(), root, nullptr));
    ASSERT_TRUE(root.isArray());
    ASSERT_EQ(root.items().size(), 1u);
    EXPECT_EQ(root.items()[0].asString(), "a\"b\\c\n\t\x01z");
}

TEST(JsonWriter, DoublesRoundTripExactly)
{
    const double samples[] = {0.0, -0.0, 1.0, -1.5, 1e-300, 1e300,
                              0.1, 1.0 / 3.0, 12345.6789};
    for (const double v : samples) {
        JsonWriter w;
        w.beginArray();
        w.value(v);
        w.endArray();
        JsonValue root;
        ASSERT_TRUE(JsonValue::parse(w.str(), root, nullptr));
        EXPECT_EQ(root.items()[0].asNumber(), v) << w.str();
    }
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull)
{
    JsonWriter w;
    w.beginArray();
    w.value(std::numeric_limits<double>::quiet_NaN());
    w.value(std::numeric_limits<double>::infinity());
    w.value(-std::numeric_limits<double>::infinity());
    w.endArray();
    EXPECT_EQ(w.str(), "[null,null,null]");
}

TEST(JsonWriter, NonFinitePolicyAppliesToStaticNumber)
{
    // arg(key, double) routes through JsonWriter::number, so trace
    // args inherit the same NaN/Inf -> null policy.
    EXPECT_EQ(JsonWriter::number(
                  std::numeric_limits<double>::quiet_NaN()),
              "null");
    EXPECT_EQ(JsonWriter::number(
                  std::numeric_limits<double>::infinity()),
              "null");
    EXPECT_EQ(JsonWriter::number(
                  -std::numeric_limits<double>::infinity()),
              "null");
    EXPECT_EQ(JsonWriter::number(2.5), "2.5");
}

TEST(JsonWriter, NonFiniteObjectValueParsesBackAsNull)
{
    JsonWriter w;
    w.beginObject();
    w.key("slowdown_factor")
        .value(std::numeric_limits<double>::quiet_NaN());
    w.endObject();
    JsonValue root;
    ASSERT_TRUE(JsonValue::parse(w.str(), root, nullptr));
    const JsonValue *v = root.find("slowdown_factor");
    ASSERT_NE(v, nullptr);
    EXPECT_TRUE(v->isNull());
}

TEST(JsonWriter, DeeplyNestedArraysRoundTrip)
{
    constexpr int kDepth = 200;
    JsonWriter w;
    for (int i = 0; i < kDepth; ++i)
        w.beginArray();
    w.value(std::uint64_t{7});
    for (int i = 0; i < kDepth; ++i)
        w.endArray();

    JsonValue root;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(w.str(), root, &error)) << error;
    const JsonValue *v = &root;
    for (int i = 0; i < kDepth - 1; ++i) {
        ASSERT_TRUE(v->isArray());
        ASSERT_EQ(v->items().size(), 1u);
        v = &v->items()[0];
    }
    ASSERT_EQ(v->items().size(), 1u);
    EXPECT_DOUBLE_EQ(v->items()[0].asNumber(), 7.0);
}

TEST(JsonWriter, DeeplyNestedObjectsRoundTrip)
{
    constexpr int kDepth = 100;
    JsonWriter w;
    for (int i = 0; i < kDepth; ++i) {
        w.beginObject();
        w.key("child");
    }
    w.beginObject();
    w.key("leaf").value(true);
    w.endObject();
    for (int i = 0; i < kDepth; ++i)
        w.endObject();

    JsonValue root;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(w.str(), root, &error)) << error;
    const JsonValue *v = &root;
    for (int i = 0; i < kDepth; ++i) {
        v = v->find("child");
        ASSERT_NE(v, nullptr) << "depth " << i;
    }
    const JsonValue *leaf = v->find("leaf");
    ASSERT_NE(leaf, nullptr);
    EXPECT_TRUE(leaf->asBool());
}

TEST(JsonWriter, HostBlockShapedDocumentRoundTrips)
{
    // Mirror of the "host" block run records carry since schema v5:
    // mixed integer counts and fractional seconds inside a nested
    // object must survive the writer -> parser path bit-exactly.
    JsonWriter w;
    w.beginObject();
    w.key("schema").value("alpha-pim-run-v5");
    w.key("host").beginObject();
    w.key("total_seconds").value(1.8125);
    w.key("replay_seconds").value(0.71875);
    w.key("replay_slots").value(std::uint64_t{123456789012345ULL});
    w.key("replay_slots_per_sec").value(1.7e8);
    w.key("slowdown_factor").value(54321.125);
    w.key("peak_rss_bytes").value(std::uint64_t{268435456});
    w.endObject();
    w.endObject();

    JsonValue root;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(w.str(), root, &error)) << error;
    const JsonValue *host = root.find("host");
    ASSERT_NE(host, nullptr);
    ASSERT_TRUE(host->isObject());
    EXPECT_EQ(host->find("total_seconds")->asNumber(), 1.8125);
    EXPECT_EQ(host->find("replay_seconds")->asNumber(), 0.71875);
    EXPECT_EQ(host->find("replay_slots")->asNumber(),
              123456789012345.0);
    EXPECT_EQ(host->find("replay_slots_per_sec")->asNumber(), 1.7e8);
    EXPECT_EQ(host->find("slowdown_factor")->asNumber(), 54321.125);
    EXPECT_EQ(host->find("peak_rss_bytes")->asNumber(), 268435456.0);
}

TEST(JsonWriter, RawValueSplicesFragment)
{
    JsonWriter w;
    w.beginObject();
    w.key("inner").rawValue("{\"a\":1}");
    w.endObject();
    JsonValue root;
    ASSERT_TRUE(JsonValue::parse(w.str(), root, nullptr));
    const JsonValue *inner = root.find("inner");
    ASSERT_NE(inner, nullptr);
    ASSERT_TRUE(inner->isObject());
    EXPECT_DOUBLE_EQ(inner->find("a")->asNumber(), 1.0);
}

TEST(JsonValue, ParsesLiteralsAndWhitespace)
{
    JsonValue root;
    ASSERT_TRUE(
        JsonValue::parse(" { \"a\" : [ true , false , null ] } ",
                         root, nullptr));
    const JsonValue *a = root.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->items().size(), 3u);
    EXPECT_TRUE(a->items()[0].asBool());
    EXPECT_FALSE(a->items()[1].asBool());
    EXPECT_TRUE(a->items()[2].isNull());
}

TEST(JsonValue, RejectsMalformedInput)
{
    const char *bad[] = {
        "",          "{",           "[1,]",       "{\"a\":}",
        "{\"a\" 1}", "\"unclosed",  "[1 2]",      "nul",
        "{]",        "[1] trailing"};
    for (const char *text : bad) {
        JsonValue root;
        std::string error;
        EXPECT_FALSE(JsonValue::parse(text, root, &error)) << text;
        EXPECT_FALSE(error.empty()) << text;
    }
}

TEST(JsonValue, ParsesUnicodeEscapes)
{
    JsonValue root;
    ASSERT_TRUE(JsonValue::parse("[\"\\u0041\\u00e9\"]", root,
                                 nullptr));
    EXPECT_EQ(root.items()[0].asString(), "A\xc3\xa9");
}

TEST(JsonValue, FindOnNonObjectReturnsNull)
{
    JsonValue root;
    ASSERT_TRUE(JsonValue::parse("[1,2]", root, nullptr));
    EXPECT_EQ(root.find("a"), nullptr);
}
