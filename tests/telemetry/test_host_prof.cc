/**
 * @file
 * Host-profiler tests: disabled-by-default no-op behavior, per-phase
 * aggregation, self-time attribution for nested timers, throughput
 * derivation in snapshot(), and the published host.* metrics /
 * host_profile trace event.
 */

#include <thread>

#include <gtest/gtest.h>

#include "telemetry/host_prof.hh"
#include "telemetry/metrics.hh"
#include "telemetry/trace.hh"

using namespace alphapim::telemetry;

namespace
{

/** Reset the global profiler to a known state for one test. */
struct ProfilerFixture : ::testing::Test
{
    void
    SetUp() override
    {
        hostProfiler().reset();
        hostProfiler().setEnabled(true);
    }

    void
    TearDown() override
    {
        hostProfiler().setEnabled(false);
        hostProfiler().reset();
    }
};

} // namespace

TEST(HostProfiler, DisabledMutatorsAreNoops)
{
    HostProfiler &p = hostProfiler();
    p.setEnabled(false);
    p.reset();
    p.addPhaseNanos(HostPhase::Replay, 1000000);
    p.addReplaySlots(42);
    {
        HostPhaseTimer t(HostPhase::Replay);
    }
    // addPhaseNanos is unconditional (callers gate on enabled());
    // the timer itself must not record while disabled.
    EXPECT_EQ(p.phaseCalls(HostPhase::Replay), 1u);
    p.reset();
    EXPECT_EQ(p.phaseCalls(HostPhase::Replay), 0u);
    EXPECT_DOUBLE_EQ(p.phaseSeconds(HostPhase::Replay), 0.0);
}

TEST_F(ProfilerFixture, PhaseNanosAccumulate)
{
    HostProfiler &p = hostProfiler();
    p.addPhaseNanos(HostPhase::PartitionBuild, 500000000);
    p.addPhaseNanos(HostPhase::PartitionBuild, 250000000);
    EXPECT_DOUBLE_EQ(p.phaseSeconds(HostPhase::PartitionBuild), 0.75);
    EXPECT_EQ(p.phaseCalls(HostPhase::PartitionBuild), 2u);
}

TEST_F(ProfilerFixture, NestedTimersAttributeSelfTime)
{
    HostProfiler &p = hostProfiler();
    {
        HostPhaseTimer outer(HostPhase::Replay);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        {
            HostPhaseTimer inner(HostPhase::ProfileFold);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(2));
        }
    }
    const double replay = p.phaseSeconds(HostPhase::Replay);
    const double fold = p.phaseSeconds(HostPhase::ProfileFold);
    EXPECT_GT(replay, 0.0);
    EXPECT_GT(fold, 0.0);
    // Self time: the inner phase's wall time must not also be
    // counted in the outer phase, so the sum stays close to the
    // total elapsed wall time rather than double it.
    const HostProfile s = p.snapshot(0.0);
    EXPECT_NEAR(s.totalSeconds, replay + fold, 1e-12);
}

TEST_F(ProfilerFixture, SnapshotDerivesThroughput)
{
    HostProfiler &p = hostProfiler();
    p.addPhaseNanos(HostPhase::Replay, 2000000000); // 2 s
    p.addPhaseNanos(HostPhase::TraceRecord, 500000000); // 0.5 s
    p.addReplaySlots(4000000);
    p.addTraceRecords(1000000);
    p.noteTaskletTraceBytes(1000);
    p.noteTaskletTraceBytes(5000);
    p.noteTaskletTraceBytes(2000); // high-water stays at 5000

    const HostProfile s = p.snapshot(0.001);
    EXPECT_DOUBLE_EQ(s.totalSeconds, 2.5);
    EXPECT_DOUBLE_EQ(s.replaySlotsPerSec, 2000000.0);
    EXPECT_DOUBLE_EQ(s.traceRecordsPerSec, 2000000.0);
    EXPECT_EQ(s.taskletTraceBytesPeak, 5000u);
    EXPECT_DOUBLE_EQ(s.slowdownFactor, 2500.0);
    EXPECT_DOUBLE_EQ(s.modelSeconds, 0.001);
}

TEST_F(ProfilerFixture, SnapshotWithZeroModelTimeHasNoSlowdown)
{
    hostProfiler().addPhaseNanos(HostPhase::Replay, 1000000000);
    const HostProfile s = hostProfiler().snapshot(0.0);
    EXPECT_DOUBLE_EQ(s.slowdownFactor, 0.0);
}

TEST_F(ProfilerFixture, ConcurrentTimersAggregateAcrossThreads)
{
    constexpr int kThreads = 8;
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t)
        pool.emplace_back([] {
            for (int i = 0; i < 100; ++i)
                hostProfiler().addPhaseNanos(HostPhase::Replay,
                                             1000000);
        });
    for (auto &t : pool)
        t.join();
    EXPECT_DOUBLE_EQ(hostProfiler().phaseSeconds(HostPhase::Replay),
                     kThreads * 100 * 1e-3);
    EXPECT_EQ(hostProfiler().phaseCalls(HostPhase::Replay),
              static_cast<std::uint64_t>(kThreads) * 100u);
}

TEST_F(ProfilerFixture, PublishWritesMetricsAndTraceEvent)
{
    MetricsRegistry &m = metrics();
    Tracer &t = tracer();
    const bool metricsWere = m.enabled();
    const bool tracerWas = t.enabled();
    m.clear();
    m.setEnabled(true);
    t.clear();
    t.setEnabled(true);

    hostProfiler().addPhaseNanos(HostPhase::Replay, 1000000000);
    hostProfiler().addReplaySlots(3000000);
    const HostProfile s = publishHostProfile(0.0005);

    EXPECT_DOUBLE_EQ(m.scalarValue("host.total_seconds"), 1.0);
    EXPECT_DOUBLE_EQ(m.scalarValue("host.phase.replay.seconds"),
                     1.0);
    EXPECT_DOUBLE_EQ(m.scalarValue("host.replay_slots_per_sec"),
                     3000000.0);
    EXPECT_DOUBLE_EQ(m.scalarValue("host.slowdown_factor"), 2000.0);
    EXPECT_DOUBLE_EQ(s.slowdownFactor, 2000.0);

    bool sawEvent = false;
    for (const TraceEvent &e : t.events())
        if (e.name == "host_profile" && e.phase == 'i') {
            sawEvent = true;
            bool sawReplay = false;
            for (const TraceArg &a : e.args)
                if (a.key == "replay_seconds")
                    sawReplay = true;
            EXPECT_TRUE(sawReplay);
        }
    EXPECT_TRUE(sawEvent);

    m.clear();
    m.setEnabled(metricsWere);
    t.clear();
    t.setEnabled(tracerWas);
}

TEST(HostProfiler, PhaseNamesAreStable)
{
    EXPECT_STREQ(hostPhaseName(HostPhase::PartitionBuild),
                 "partition_build");
    EXPECT_STREQ(hostPhaseName(HostPhase::TraceRecord),
                 "trace_record");
    EXPECT_STREQ(hostPhaseName(HostPhase::Replay), "replay");
    EXPECT_STREQ(hostPhaseName(HostPhase::ProfileFold),
                 "profile_fold");
    EXPECT_STREQ(hostPhaseName(HostPhase::TransferModel),
                 "transfer_model");
    EXPECT_STREQ(hostPhaseName(HostPhase::HostMerge), "host_merge");
    EXPECT_STREQ(hostPhaseName(HostPhase::Analysis), "analysis");
}
