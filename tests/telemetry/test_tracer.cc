/**
 * @file
 * Tracer tests: the disabled tracer must record nothing (the
 * zero-cost guarantee), the model-time cursor must advance
 * monotonically, and the Chrome trace-event export must be valid
 * JSON with correctly nested spans and the documented track layout
 * -- including an end-to-end BFS run producing per-rank transfer and
 * per-DPU kernel tracks.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/graph_apps.hh"
#include "common/random.hh"
#include "sparse/generators.hh"
#include "telemetry/json.hh"
#include "telemetry/telemetry.hh"
#include "upmem/transfer_model.hh"

using namespace alphapim;
using namespace alphapim::telemetry;

namespace
{

/** Reset the global tracer around each test. */
class TracerTest : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        tracer().setEnabled(false);
        tracer().clear();
    }

    void
    TearDown() override
    {
        tracer().setEnabled(false);
        tracer().clear();
    }
};

/** Parse the tracer's Chrome export; fails the test on bad JSON. */
JsonValue
parsedTrace()
{
    JsonValue root;
    std::string error;
    EXPECT_TRUE(JsonValue::parse(tracer().chromeTraceJson(), root,
                                 &error))
        << error;
    return root;
}

} // namespace

TEST_F(TracerTest, DisabledTracerRecordsNothing)
{
    ASSERT_FALSE(tracer().enabled());
    tracer().completeEvent(engineTrack, "span", "test", 0.0, 1.0);
    tracer().instantEvent(engineTrack, "mark", "test", 0.5);
    tracer().nameTrack(engineTrack, "engine");
    tracer().advance(1.0);
    {
        ScopedSpan span(engineTrack, "scoped", "test");
        tracer().advance(1.0);
    }
    EXPECT_EQ(tracer().eventCount(), 0u);
    EXPECT_EQ(tracer().now(), 0.0);
}

TEST_F(TracerTest, ClockAdvancesMonotonically)
{
    tracer().setEnabled(true);
    EXPECT_EQ(tracer().now(), 0.0);
    tracer().advance(1.5);
    EXPECT_DOUBLE_EQ(tracer().now(), 1.5);
    tracer().advanceTo(1.0); // backwards: ignored
    EXPECT_DOUBLE_EQ(tracer().now(), 1.5);
    tracer().advanceTo(2.0);
    EXPECT_DOUBLE_EQ(tracer().now(), 2.0);
    tracer().resetClock();
    EXPECT_EQ(tracer().now(), 0.0);
}

TEST_F(TracerTest, ScopedSpanRecordsCursorInterval)
{
    tracer().setEnabled(true);
    tracer().advance(1.0);
    {
        ScopedSpan span(engineTrack, "work", "test");
        tracer().advance(2.0);
    }
    const auto events = tracer().events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].name, "work");
    EXPECT_EQ(events[0].phase, 'X');
    EXPECT_DOUBLE_EQ(events[0].start, 1.0);
    EXPECT_DOUBLE_EQ(events[0].duration, 2.0);
}

TEST_F(TracerTest, ChromeExportIsWellFormed)
{
    tracer().setEnabled(true);
    tracer().nameTrack(engineTrack, "engine");
    tracer().completeEvent(engineTrack, "outer", "test", 0.0, 4.0,
                           {arg("x", 1.25), arg("n", "label")});
    tracer().completeEvent(engineTrack, "inner", "test", 1.0, 2.0);
    tracer().instantEvent(rankTrack(3), "tick", "test", 0.5);

    const JsonValue root = parsedTrace();
    const JsonValue *unit = root.find("displayTimeUnit");
    ASSERT_NE(unit, nullptr);
    EXPECT_EQ(unit->asString(), "ms");
    const JsonValue *events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    bool saw_outer = false, saw_instant = false, saw_meta = false;
    for (const auto &e : events->items()) {
        const std::string &ph = e.find("ph")->asString();
        const std::string &name = e.find("name")->asString();
        if (ph == "X" && name == "outer") {
            saw_outer = true;
            EXPECT_DOUBLE_EQ(e.find("ts")->asNumber(), 0.0);
            EXPECT_DOUBLE_EQ(e.find("dur")->asNumber(), 4e6);
            EXPECT_DOUBLE_EQ(
                e.find("args")->find("x")->asNumber(), 1.25);
        } else if (ph == "i" && name == "tick") {
            saw_instant = true;
            EXPECT_DOUBLE_EQ(e.find("pid")->asNumber(), pidRank);
            EXPECT_DOUBLE_EQ(e.find("tid")->asNumber(), 3.0);
            EXPECT_EQ(e.find("s")->asString(), "t");
        } else if (ph == "M" && name == "thread_name") {
            saw_meta = true;
            EXPECT_EQ(e.find("args")->find("name")->asString(),
                      "engine");
        }
    }
    EXPECT_TRUE(saw_outer);
    EXPECT_TRUE(saw_instant);
    EXPECT_TRUE(saw_meta);
}

TEST_F(TracerTest, ExportOrdersEnclosingSpansFirst)
{
    tracer().setEnabled(true);
    // Recorded inner-first: the export must sort the enclosing span
    // ahead of the nested one so Perfetto stacks them correctly.
    tracer().completeEvent(engineTrack, "inner", "test", 1.0, 2.0);
    tracer().completeEvent(engineTrack, "outer", "test", 0.0, 4.0);

    const JsonValue root = parsedTrace();
    std::vector<std::string> span_order;
    for (const auto &e : root.find("traceEvents")->items()) {
        if (e.find("ph")->asString() == "X")
            span_order.push_back(e.find("name")->asString());
    }
    ASSERT_EQ(span_order.size(), 2u);
    EXPECT_EQ(span_order[0], "outer");
    EXPECT_EQ(span_order[1], "inner");
}

TEST_F(TracerTest, TransferEventsRequireARecordingScope)
{
    tracer().setEnabled(true);
    const upmem::TransferModel model{upmem::TransferConfig{}};

    // Outside a RecordingScope: a cost-model probe. No events, no
    // clock movement.
    model.broadcast(4096, 128);
    EXPECT_EQ(tracer().eventCount(), 0u);
    EXPECT_EQ(tracer().now(), 0.0);

    // Inside a scope: one span per touched rank, clock advances.
    {
        RecordingScope scope;
        const Seconds time = model.broadcast(4096, 128);
        EXPECT_GT(time, 0.0);
        EXPECT_DOUBLE_EQ(tracer().now(), time);
    }
    const auto events = tracer().events();
    ASSERT_FALSE(events.empty());
    for (const auto &e : events) {
        EXPECT_EQ(e.track.pid, pidRank);
        EXPECT_EQ(e.name, "broadcast");
    }
}

TEST_F(TracerTest, BfsRunProducesNestedPhaseAndDeviceTracks)
{
    tracer().setEnabled(true);

    Rng rng(7);
    const auto list = sparse::generateScaleMatched(300, 6, 20, rng);
    const auto matrix = sparse::edgeListToSymmetricCoo(list);
    upmem::SystemConfig cfg;
    cfg.numDpus = 8;
    cfg.dpu.tasklets = 4;
    const upmem::UpmemSystem sys(cfg);

    apps::AppConfig app_cfg;
    app_cfg.strategy = core::MxvStrategy::Adaptive;
    const auto result = apps::runBfs(sys, matrix, 0, app_cfg);
    ASSERT_FALSE(result.iterations.empty());

    const auto events = tracer().events();
    ASSERT_FALSE(events.empty());

    // Track layout: engine phases on pid 1, per-rank transfers on
    // pid 2, per-DPU kernels on pid 3.
    bool saw_iteration = false, saw_phase = false;
    bool saw_rank = false, saw_dpu = false;
    for (const auto &e : events) {
        if (e.track.pid == pidEngine &&
            e.name == "bfs.iteration")
            saw_iteration = true;
        if (e.track.pid == pidEngine && e.category == "phase")
            saw_phase = true;
        if (e.track.pid == pidRank)
            saw_rank = true;
        if (e.track.pid == pidDpu) {
            saw_dpu = true;
            EXPECT_LT(e.track.tid, tracer().dpuTrackLimit());
        }
    }
    EXPECT_TRUE(saw_iteration);
    EXPECT_TRUE(saw_phase);
    EXPECT_TRUE(saw_rank);
    EXPECT_TRUE(saw_dpu);

    // Span nesting on the engine track: every phase span must lie
    // inside some multiply span, and every multiply span inside some
    // iteration span (with float tolerance on the boundaries).
    const double eps = 1e-9;
    auto contained = [&](const TraceEvent &in,
                         const std::string &outer_cat) {
        return std::any_of(
            events.begin(), events.end(), [&](const TraceEvent &out) {
                return out.category == outer_cat &&
                       out.track.pid == pidEngine &&
                       out.start <= in.start + eps &&
                       out.start + out.duration + eps >=
                           in.start + in.duration;
            });
    };
    for (const auto &e : events) {
        if (e.track.pid != pidEngine || e.phase != 'X')
            continue;
        if (e.category == "phase")
            EXPECT_TRUE(contained(e, "multiply")) << e.name;
        if (e.category == "multiply")
            EXPECT_TRUE(contained(e, "app")) << e.name;
    }

    // The whole export must still parse as JSON.
    parsedTrace();
}

TEST_F(TracerTest, BufferCapDropsAndCountsOverflow)
{
    tracer().setEnabled(true);
    tracer().setBufferLimit(4);
    metrics().setEnabled(true);
    metrics().clear();

    for (int i = 0; i < 10; ++i)
        tracer().completeEvent(engineTrack, "e", "test",
                               static_cast<Seconds>(i), 1.0);
    EXPECT_EQ(tracer().eventCount(), 4u);
    EXPECT_EQ(tracer().droppedEvents(), 6u);
    EXPECT_EQ(metrics().counterValue("trace.dropped_spans"), 6u);

    tracer().clear();
    EXPECT_EQ(tracer().droppedEvents(), 0u);
    tracer().setBufferLimit(1u << 20);
    metrics().clear();
    metrics().setEnabled(false);
}

TEST_F(TracerTest, StreamedTraceIsCompleteAndParseable)
{
    const std::string path =
        testing::TempDir() + "alphapim_stream_trace.json";
    tracer().setEnabled(true);
    tracer().nameTrack(engineTrack, "engine");
    ASSERT_TRUE(tracer().openStream(path));
    EXPECT_TRUE(tracer().streaming());
    // A second sink cannot be opened over the first.
    EXPECT_FALSE(tracer().openStream(path));

    for (int i = 0; i < 64; ++i)
        tracer().completeEvent(engineTrack, "e", "test",
                               static_cast<Seconds>(i), 0.5);
    tracer().instantEvent(rankTrack(1), "tick", "test", 2.0);
    tracer().closeStream();
    EXPECT_FALSE(tracer().streaming());
    // Everything flushed: the buffer is empty, the total remembers.
    EXPECT_EQ(tracer().eventCount(), 0u);
    EXPECT_EQ(tracer().totalEventCount(), 65u);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    JsonValue root;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(buf.str(), root, &error)) << error;
    const JsonValue *events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    std::size_t spans = 0, metas = 0;
    for (const auto &e : events->items()) {
        const std::string &ph = e.find("ph")->asString();
        if (ph == "X" || ph == "i")
            ++spans;
        else if (ph == "M")
            ++metas;
    }
    EXPECT_EQ(spans, 65u);
    EXPECT_GE(metas, 2u); // process_name + thread_name at least
    std::remove(path.c_str());
}

TEST_F(TracerTest, EventsSinceReturnsTheRecordedSuffix)
{
    tracer().setEnabled(true);
    tracer().completeEvent(engineTrack, "a", "test", 0.0, 1.0);
    tracer().completeEvent(engineTrack, "b", "test", 1.0, 1.0);
    const std::size_t mark = tracer().totalEventCount();
    EXPECT_EQ(mark, 2u);
    tracer().completeEvent(engineTrack, "c", "test", 2.0, 1.0);
    tracer().completeEvent(engineTrack, "d", "test", 3.0, 1.0);

    const auto suffix = tracer().eventsSince(mark);
    ASSERT_EQ(suffix.size(), 2u);
    EXPECT_EQ(suffix[0].name, "c");
    EXPECT_EQ(suffix[1].name, "d");
    EXPECT_TRUE(tracer().eventsSince(100).empty());
    EXPECT_EQ(tracer().eventsSince(0).size(), 4u);
}

TEST_F(TracerTest, DpuTrackLimitCapsKernelTracks)
{
    tracer().setEnabled(true);
    tracer().setDpuTrackLimit(2);

    Rng rng(11);
    const auto list = sparse::generateScaleMatched(200, 6, 20, rng);
    const auto matrix = sparse::edgeListToSymmetricCoo(list);
    upmem::SystemConfig cfg;
    cfg.numDpus = 8;
    cfg.dpu.tasklets = 4;
    const upmem::UpmemSystem sys(cfg);

    apps::AppConfig app_cfg;
    const auto result = apps::runBfs(sys, matrix, 0, app_cfg);
    ASSERT_FALSE(result.iterations.empty());

    for (const auto &e : tracer().events()) {
        if (e.track.pid == pidDpu)
            EXPECT_LT(e.track.tid, 2u);
    }
    tracer().setDpuTrackLimit(128);
}
