/**
 * @file
 * Timeline reconstruction tests on synthetic span sets with
 * hand-computed phase breakdowns, occupancy and overlap fractions --
 * including the fully-serial (overlap 0) and fully-overlapped
 * (overlap 1) fixtures the what-if estimator is calibrated against.
 */

#include <cmath>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/metrics.hh"
#include "telemetry/timeline.hh"
#include "telemetry/trace.hh"

using namespace alphapim;
using namespace alphapim::telemetry;

namespace
{

TimelineSpan
span(const char *name, const char *category, std::uint32_t pid,
     std::uint32_t tid, Seconds start, Seconds duration)
{
    TimelineSpan s;
    s.name = name;
    s.category = category;
    s.pid = pid;
    s.tid = tid;
    s.start = start;
    s.duration = duration;
    return s;
}

} // namespace

TEST(Timeline, EmptySpanSetYieldsEmptyTimeline)
{
    const Timeline tl = buildTimeline(std::vector<TimelineSpan>{});
    EXPECT_TRUE(tl.launches.empty());
    EXPECT_TRUE(tl.rankSpans.empty());
    EXPECT_TRUE(tl.dpuSpans.empty());
    EXPECT_DOUBLE_EQ(tl.window(), 0.0);
    EXPECT_DOUBLE_EQ(tl.accountedSeconds(), 0.0);
}

TEST(Timeline, PhaseSpansRefineTheLaunchWindow)
{
    // One launch [0, 10): load 2, kernel 3, retrieve 1, merge 4.
    std::vector<TimelineSpan> spans;
    spans.push_back(span("spmv", "multiply", pidEngine, 0, 0.0, 10.0));
    spans.push_back(span("load", "phase", pidEngine, 0, 0.0, 2.0));
    spans.push_back(span("kernel", "phase", pidEngine, 0, 2.0, 3.0));
    spans.push_back(span("retrieve", "phase", pidEngine, 0, 5.0, 1.0));
    spans.push_back(span("merge", "phase", pidEngine, 0, 6.0, 4.0));

    const Timeline tl = buildTimeline(spans);
    ASSERT_EQ(tl.launches.size(), 1u);
    const LaunchWindow &l = tl.launches[0];
    EXPECT_EQ(l.kernel, "spmv");
    EXPECT_DOUBLE_EQ(l.start, 0.0);
    EXPECT_DOUBLE_EQ(l.load, 2.0);
    EXPECT_DOUBLE_EQ(l.kernel_time, 3.0);
    EXPECT_DOUBLE_EQ(l.retrieve, 1.0);
    EXPECT_DOUBLE_EQ(l.merge, 4.0);
    EXPECT_DOUBLE_EQ(l.total(), 10.0);
    EXPECT_DOUBLE_EQ(tl.accountedSeconds(), 10.0);
}

TEST(Timeline, UnrefinedMultiplyKeepsItsDurationAsMerge)
{
    // A multiply with no phase spans (foreign trace): the whole
    // duration lands in the merge bucket so attribution still sums.
    std::vector<TimelineSpan> spans;
    spans.push_back(span("spmv", "multiply", pidEngine, 0, 1.0, 5.0));

    const Timeline tl = buildTimeline(spans);
    ASSERT_EQ(tl.launches.size(), 1u);
    EXPECT_DOUBLE_EQ(tl.launches[0].merge, 5.0);
    EXPECT_DOUBLE_EQ(tl.launches[0].total(), 5.0);
}

TEST(Timeline, IterationGapFoldsIntoTheLastLaunchMerge)
{
    // The app accounts 2s of host extra after the launch's phase
    // spans, inside the enclosing iteration span: reconstruction
    // folds it into the launch's merge so the attribution sums to
    // the iteration, i.e. to total model time.
    std::vector<TimelineSpan> spans;
    spans.push_back(
        span("bfs.iteration", "app", pidEngine, 0, 0.0, 12.0));
    spans.push_back(span("spmv", "multiply", pidEngine, 0, 0.0, 10.0));
    spans.push_back(span("load", "phase", pidEngine, 0, 0.0, 2.0));
    spans.push_back(span("kernel", "phase", pidEngine, 0, 2.0, 3.0));
    spans.push_back(span("retrieve", "phase", pidEngine, 0, 5.0, 1.0));
    spans.push_back(span("merge", "phase", pidEngine, 0, 6.0, 4.0));

    const Timeline tl = buildTimeline(spans);
    ASSERT_EQ(tl.launches.size(), 1u);
    EXPECT_DOUBLE_EQ(tl.launches[0].merge, 6.0); // 4 + 2 folded
    EXPECT_DOUBLE_EQ(tl.accountedSeconds(), 12.0);
    EXPECT_DOUBLE_EQ(tl.window(), 12.0);
    ASSERT_EQ(tl.iterations.size(), 1u);
}

TEST(Timeline, RankAndDpuSpansLandOnTheirTracks)
{
    std::vector<TimelineSpan> spans;
    spans.push_back(span("scatter", "xfer", pidRank, 0, 0.0, 1.0));
    spans.push_back(span("scatter", "xfer", pidRank, 1, 0.0, 1.5));
    spans.push_back(span("kernel", "dpu", pidDpu, 0, 1.5, 2.0));

    const Timeline tl = buildTimeline(spans);
    EXPECT_EQ(tl.rankSpans.size(), 2u);
    EXPECT_EQ(tl.dpuSpans.size(), 1u);
    ASSERT_EQ(tl.rankSpans.at(1).size(), 1u);
    EXPECT_DOUBLE_EQ(tl.rankSpans.at(1)[0].duration, 1.5);
}

TEST(Timeline, UnionAndIntersectionLengths)
{
    using I = std::pair<Seconds, Seconds>;
    EXPECT_DOUBLE_EQ(unionLength({}), 0.0);
    EXPECT_DOUBLE_EQ(unionLength({I{0.0, 1.0}, I{2.0, 3.0}}), 2.0);
    EXPECT_DOUBLE_EQ(unionLength({I{0.0, 2.0}, I{1.0, 3.0}}), 3.0);
    EXPECT_DOUBLE_EQ(unionLength({I{0.0, 1.0}, I{0.0, 1.0}}), 1.0);
    // Degenerate / inverted intervals are ignored.
    EXPECT_DOUBLE_EQ(unionLength({I{1.0, 1.0}, I{3.0, 2.0}}), 0.0);

    EXPECT_DOUBLE_EQ(
        intersectionLength({I{0.0, 2.0}}, {I{1.0, 3.0}}), 1.0);
    EXPECT_DOUBLE_EQ(
        intersectionLength({I{0.0, 1.0}}, {I{1.0, 2.0}}), 0.0);
    EXPECT_DOUBLE_EQ(
        intersectionLength({I{0.0, 4.0}}, {I{1.0, 2.0}, I{3.0, 5.0}}),
        2.0);
}

TEST(Timeline, FullySerialExecutionHasZeroOverlap)
{
    // Transfer on [0, 1), kernel on [1, 2): no concurrency at all.
    std::vector<TimelineSpan> spans;
    spans.push_back(span("scatter", "xfer", pidRank, 0, 0.0, 1.0));
    spans.push_back(span("kernel", "dpu", pidDpu, 0, 1.0, 1.0));

    const TimelineStats s = computeStats(buildTimeline(spans));
    EXPECT_DOUBLE_EQ(s.windowSeconds, 2.0);
    EXPECT_DOUBLE_EQ(s.transferBusySeconds, 1.0);
    EXPECT_DOUBLE_EQ(s.kernelBusySeconds, 1.0);
    EXPECT_DOUBLE_EQ(s.overlapSeconds, 0.0);
    EXPECT_DOUBLE_EQ(s.overlapFraction, 0.0);
    EXPECT_DOUBLE_EQ(s.idleFraction, 0.0);
    ASSERT_EQ(s.rankOccupancy.size(), 1u);
    EXPECT_DOUBLE_EQ(s.rankOccupancy[0].second, 0.5);
    EXPECT_DOUBLE_EQ(s.dpuOccupancyMean, 0.5);
}

TEST(Timeline, FullyOverlappedKernelHasOverlapOne)
{
    // Transfer covers [0, 2); the kernel [0.5, 1.5) is entirely
    // hidden under it: overlap = kernel busy, fraction = 1.
    std::vector<TimelineSpan> spans;
    spans.push_back(span("scatter", "xfer", pidRank, 0, 0.0, 2.0));
    spans.push_back(span("kernel", "dpu", pidDpu, 0, 0.5, 1.0));

    const TimelineStats s = computeStats(buildTimeline(spans));
    EXPECT_DOUBLE_EQ(s.overlapSeconds, 1.0);
    EXPECT_DOUBLE_EQ(s.overlapFraction, 1.0);
    EXPECT_DOUBLE_EQ(s.idleFraction, 0.0);
}

TEST(Timeline, OccupancyAveragesAcrossTracks)
{
    // Window [0, 4): rank 0 busy 2s (0.5), rank 1 busy 1s (0.25).
    std::vector<TimelineSpan> spans;
    spans.push_back(span("scatter", "xfer", pidRank, 0, 0.0, 2.0));
    spans.push_back(span("gather", "xfer", pidRank, 1, 3.0, 1.0));

    const TimelineStats s = computeStats(buildTimeline(spans));
    EXPECT_EQ(s.ranks, 2u);
    EXPECT_DOUBLE_EQ(s.rankOccupancyMean, 0.375);
    EXPECT_DOUBLE_EQ(s.rankOccupancyMin, 0.25);
    // [2, 3) has no device activity: idle fraction 1/4.
    EXPECT_DOUBLE_EQ(s.idleFraction, 0.25);
}

TEST(Timeline, RecordTimelineMetricsExportsScalarsAndSamples)
{
    std::vector<TimelineSpan> spans;
    spans.push_back(span("scatter", "xfer", pidRank, 0, 0.0, 1.0));
    spans.push_back(span("scatter", "xfer", pidRank, 1, 0.0, 2.0));
    spans.push_back(span("kernel", "dpu", pidDpu, 0, 1.0, 1.0));
    const TimelineStats s = computeStats(buildTimeline(spans));

    MetricsRegistry registry;
    registry.setEnabled(true);
    recordTimelineMetrics(s, registry);
    EXPECT_DOUBLE_EQ(registry.scalarValue("timeline.window_seconds"),
                     2.0);
    EXPECT_DOUBLE_EQ(
        registry.scalarValue("timeline.overlap_fraction"),
        s.overlapFraction);
    EXPECT_DOUBLE_EQ(registry.scalarValue("timeline.idle_fraction"),
                     s.idleFraction);
    const RunningStats *rank_occ =
        registry.distribution("timeline.rank.occupancy");
    ASSERT_NE(rank_occ, nullptr);
    EXPECT_EQ(rank_occ->count(), 2u);
    const RunningStats *dpu_occ =
        registry.distribution("timeline.dpu.occupancy");
    ASSERT_NE(dpu_occ, nullptr);
    EXPECT_EQ(dpu_occ->count(), 1u);

    // The disabled registry must stay empty.
    MetricsRegistry off;
    recordTimelineMetrics(s, off);
    EXPECT_EQ(off.size(), 0u);
}
