/**
 * @file
 * MxvResult JSON serialization tests: the record written by
 * mxvResultToJson must parse back with JsonValue and carry the phase
 * times, stall fractions, and instruction mix of the source result.
 */

#include <string>

#include <gtest/gtest.h>

#include "core/result_json.hh"
#include "telemetry/json.hh"

using namespace alphapim;
using namespace alphapim::core;
using namespace alphapim::telemetry;

namespace
{

MxvResult<float>
sampleResult()
{
    MxvResult<float> r;
    r.outputNnz = 17;
    r.semiringOps = 4242;
    r.times.load = 0.001;
    r.times.kernel = 0.004;
    r.times.retrieve = 0.002;
    r.times.merge = 0.0005;

    upmem::DpuProfile dpu;
    dpu.totalCycles = 1000;
    dpu.issuedCycles = 600;
    dpu.stallCycles[static_cast<std::size_t>(
        upmem::StallReason::Memory)] = 250;
    dpu.stallCycles[static_cast<std::size_t>(
        upmem::StallReason::Sync)] = 150;
    dpu.instrByClass[static_cast<std::size_t>(
        upmem::OpClass::IntAdd)] = 400;
    dpu.instrByClass[static_cast<std::size_t>(
        upmem::OpClass::DmaRead)] = 100;
    dpu.activeThreadCycles = 8000.0;
    r.profile.add(dpu);

    upmem::DpuProfile dpu2 = dpu;
    dpu2.totalCycles = 500;
    dpu2.issuedCycles = 300;
    // Shrink the stall slots with the total: stall + issue cycles
    // may never exceed totalCycles (LaunchProfile::add asserts it).
    dpu2.stallCycles[static_cast<std::size_t>(
        upmem::StallReason::Memory)] = 150;
    dpu2.stallCycles[static_cast<std::size_t>(
        upmem::StallReason::Sync)] = 50;
    r.profile.add(dpu2);
    return r;
}

} // namespace

TEST(ResultJson, RoundTripsThroughParser)
{
    const auto result = sampleResult();
    const std::string json = mxvResultToJson(result);

    JsonValue root;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(json, root, &error)) << error;

    EXPECT_DOUBLE_EQ(root.find("output_nnz")->asNumber(), 17.0);
    EXPECT_DOUBLE_EQ(root.find("semiring_ops")->asNumber(), 4242.0);

    const JsonValue *times = root.find("times");
    ASSERT_NE(times, nullptr);
    EXPECT_DOUBLE_EQ(times->find("load")->asNumber(), 0.001);
    EXPECT_DOUBLE_EQ(times->find("kernel")->asNumber(), 0.004);
    EXPECT_DOUBLE_EQ(times->find("retrieve")->asNumber(), 0.002);
    EXPECT_DOUBLE_EQ(times->find("merge")->asNumber(), 0.0005);
    EXPECT_DOUBLE_EQ(times->find("total")->asNumber(),
                     result.times.total());

    const JsonValue *profile = root.find("profile");
    ASSERT_NE(profile, nullptr);
    EXPECT_DOUBLE_EQ(profile->find("total_cycles")->asNumber(),
                     1500.0);
    EXPECT_DOUBLE_EQ(profile->find("issued_cycles")->asNumber(),
                     900.0);
    EXPECT_DOUBLE_EQ(profile->find("max_cycles")->asNumber(),
                     1000.0);
    EXPECT_DOUBLE_EQ(profile->find("active_dpus")->asNumber(), 2.0);
    EXPECT_DOUBLE_EQ(
        profile->find("issued_fraction")->asNumber(),
        result.profile.aggregate.issuedFraction());

    const JsonValue *stalls = profile->find("stall_fractions");
    ASSERT_NE(stalls, nullptr);
    EXPECT_DOUBLE_EQ(stalls->find("memory")->asNumber(),
                     result.profile.aggregate.stallFraction(
                         upmem::StallReason::Memory));
    EXPECT_DOUBLE_EQ(stalls->find("sync")->asNumber(),
                     result.profile.aggregate.stallFraction(
                         upmem::StallReason::Sync));

    const JsonValue *instr = profile->find("instr_by_category");
    ASSERT_NE(instr, nullptr);
    EXPECT_DOUBLE_EQ(instr->find("arithmetic")->asNumber(), 800.0);
    EXPECT_DOUBLE_EQ(instr->find("dma")->asNumber(), 200.0);
    EXPECT_DOUBLE_EQ(instr->find("sync")->asNumber(), 0.0);
}

TEST(ResultJson, EmptyResultSerializesCleanly)
{
    const MxvResult<float> empty;
    JsonValue root;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(mxvResultToJson(empty), root,
                                 &error))
        << error;
    EXPECT_DOUBLE_EQ(root.find("output_nnz")->asNumber(), 0.0);
    const JsonValue *profile = root.find("profile");
    ASSERT_NE(profile, nullptr);
    EXPECT_DOUBLE_EQ(profile->find("issued_fraction")->asNumber(),
                     0.0);
}
