/**
 * @file
 * Metrics registry tests: counter/scalar/distribution bookkeeping,
 * the disabled registry ignoring every update, and the JSONL export
 * parsing line-by-line with the documented record shape.
 */

#include <cmath>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "telemetry/json.hh"
#include "telemetry/metrics.hh"

using namespace alphapim::telemetry;

namespace
{

/** Fresh, enabled registry per test (not the global singleton). */
class MetricsTest : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        registry_.setEnabled(true);
    }

    MetricsRegistry registry_;
};

} // namespace

TEST_F(MetricsTest, CountersAccumulate)
{
    registry_.addCounter("engine.iterations");
    registry_.addCounter("engine.iterations");
    registry_.addCounter("xfer.bytes", 1024);
    EXPECT_EQ(registry_.counterValue("engine.iterations"), 2u);
    EXPECT_EQ(registry_.counterValue("xfer.bytes"), 1024u);
    EXPECT_EQ(registry_.counterValue("missing"), 0u);
}

TEST_F(MetricsTest, ScalarsAddAndSet)
{
    registry_.addScalar("phase.load_seconds", 0.25);
    registry_.addScalar("phase.load_seconds", 0.5);
    EXPECT_DOUBLE_EQ(registry_.scalarValue("phase.load_seconds"),
                     0.75);
    registry_.setScalar("phase.load_seconds", 1.0);
    EXPECT_DOUBLE_EQ(registry_.scalarValue("phase.load_seconds"),
                     1.0);
    EXPECT_DOUBLE_EQ(registry_.scalarValue("missing"), 0.0);
}

TEST_F(MetricsTest, DistributionsTrackSamples)
{
    registry_.addSample("dpu.cycles_per_launch", 100.0);
    registry_.addSample("dpu.cycles_per_launch", 300.0);
    const auto *dist =
        registry_.distribution("dpu.cycles_per_launch");
    ASSERT_NE(dist, nullptr);
    EXPECT_EQ(dist->count(), 2u);
    EXPECT_DOUBLE_EQ(dist->mean(), 200.0);
    EXPECT_DOUBLE_EQ(dist->min(), 100.0);
    EXPECT_DOUBLE_EQ(dist->max(), 300.0);
    EXPECT_EQ(registry_.distribution("missing"), nullptr);
}

TEST_F(MetricsTest, DistributionPercentiles)
{
    for (int i = 1; i <= 100; ++i)
        registry_.addSample("dpu.cycles_per_launch",
                            static_cast<double>(i));
    EXPECT_DOUBLE_EQ(registry_.distributionPercentile(
                         "dpu.cycles_per_launch", 50.0),
                     50.5);
    EXPECT_DOUBLE_EQ(registry_.distributionPercentile(
                         "dpu.cycles_per_launch", 95.0),
                     95.05);
    EXPECT_DOUBLE_EQ(registry_.distributionPercentile(
                         "dpu.cycles_per_launch", 99.0),
                     99.01);
    EXPECT_TRUE(std::isnan(
        registry_.distributionPercentile("missing", 50.0)));
    // p999 interpolates within the last gap (type-7, numpy
    // percentile(range(1,101), 99.9) == 99.901).
    EXPECT_DOUBLE_EQ(registry_.distributionPercentile(
                         "dpu.cycles_per_launch", 99.9),
                     99.901);
}

TEST_F(MetricsTest, SamplesBelowTheCapStayExact)
{
    registry_.setSampleCap(8);
    for (int i = 1; i <= 8; ++i)
        registry_.addSample("d", static_cast<double>(i));
    EXPECT_EQ(registry_.samplesDropped("d"), 0u);
    EXPECT_EQ(registry_.counterValue("d.samples_dropped"), 0u);
    // All 8 retained: exact percentiles of the full sample set.
    EXPECT_DOUBLE_EQ(registry_.distributionPercentile("d", 0.0),
                     1.0);
    EXPECT_DOUBLE_EQ(registry_.distributionPercentile("d", 100.0),
                     8.0);
}

TEST_F(MetricsTest, ReservoirCapsRetainedSamples)
{
    registry_.setSampleCap(4);
    for (int i = 1; i <= 100; ++i)
        registry_.addSample("d", static_cast<double>(i));

    // The running moments see every sample; only retention is capped.
    const auto *dist = registry_.distribution("d");
    ASSERT_NE(dist, nullptr);
    EXPECT_EQ(dist->count(), 100u);
    EXPECT_DOUBLE_EQ(dist->min(), 1.0);
    EXPECT_DOUBLE_EQ(dist->max(), 100.0);

    // 96 samples overflowed the reservoir, and the overflow is
    // surfaced as a per-distribution counter.
    EXPECT_EQ(registry_.samplesDropped("d"), 96u);
    EXPECT_EQ(registry_.counterValue("d.samples_dropped"), 96u);
    EXPECT_EQ(registry_.samplesDropped("missing"), 0u);

    // Percentiles of the retained reservoir stay within the data
    // range (the reservoir is a subset of the real samples).
    const double p50 = registry_.distributionPercentile("d", 50.0);
    EXPECT_GE(p50, 1.0);
    EXPECT_LE(p50, 100.0);
}

TEST_F(MetricsTest, SampleCapZeroRetainsNothing)
{
    registry_.setSampleCap(0);
    registry_.addSample("d", 1.0);
    registry_.addSample("d", 2.0);
    EXPECT_EQ(registry_.samplesDropped("d"), 2u);
    EXPECT_TRUE(
        std::isnan(registry_.distributionPercentile("d", 50.0)));
    // Moments still track every sample.
    const auto *dist = registry_.distribution("d");
    ASSERT_NE(dist, nullptr);
    EXPECT_EQ(dist->count(), 2u);
}

TEST_F(MetricsTest, JsonlReportsSamplesDropped)
{
    registry_.setSampleCap(2);
    for (int i = 0; i < 10; ++i)
        registry_.addSample("capped", static_cast<double>(i));
    registry_.addSample("uncapped", 1.0);

    bool saw_dropped_field = false;
    std::istringstream lines(registry_.jsonl());
    std::string line;
    while (std::getline(lines, line)) {
        JsonValue record;
        std::string error;
        ASSERT_TRUE(JsonValue::parse(line, record, &error)) << error;
        const JsonValue *name = record.find("name");
        if (!name || record.find("kind")->asString() !=
                         "distribution")
            continue;
        const JsonValue *dropped = record.find("samples_dropped");
        if (name->asString() == "capped") {
            ASSERT_NE(dropped, nullptr);
            EXPECT_DOUBLE_EQ(dropped->asNumber(), 8.0);
            saw_dropped_field = true;
        } else {
            // Never-capped distributions keep the lean record shape.
            EXPECT_EQ(dropped, nullptr);
        }
    }
    EXPECT_TRUE(saw_dropped_field);
}

TEST_F(MetricsTest, DisabledRegistryIgnoresEveryUpdate)
{
    registry_.setEnabled(false);
    registry_.addCounter("c");
    registry_.addScalar("s", 1.0);
    registry_.setScalar("s2", 2.0);
    registry_.addSample("d", 3.0);
    EXPECT_EQ(registry_.size(), 0u);
    EXPECT_EQ(registry_.counterValue("c"), 0u);
}

TEST_F(MetricsTest, ClearDropsMetricsButKeepsEnabled)
{
    registry_.addCounter("c");
    registry_.clear();
    EXPECT_EQ(registry_.size(), 0u);
    EXPECT_TRUE(registry_.enabled());
}

TEST_F(MetricsTest, JsonlRecordsParseWithExpectedShape)
{
    registry_.addCounter("engine.iterations", 7);
    registry_.setScalar("phase.kernel_seconds", 0.125);
    registry_.addSample("dpu.cycles_per_launch", 10.0);
    registry_.addSample("dpu.cycles_per_launch", 30.0);

    std::istringstream in(registry_.jsonl());
    std::string line;
    bool saw_counter = false, saw_scalar = false, saw_dist = false;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
        ++lines;
        JsonValue record;
        std::string error;
        ASSERT_TRUE(JsonValue::parse(line, record, &error))
            << error << ": " << line;
        const std::string &kind = record.find("kind")->asString();
        const std::string &name = record.find("name")->asString();
        if (kind == "counter" && name == "engine.iterations") {
            saw_counter = true;
            EXPECT_DOUBLE_EQ(record.find("value")->asNumber(), 7.0);
        } else if (kind == "scalar" &&
                   name == "phase.kernel_seconds") {
            saw_scalar = true;
            EXPECT_DOUBLE_EQ(record.find("value")->asNumber(),
                             0.125);
        } else if (kind == "distribution" &&
                   name == "dpu.cycles_per_launch") {
            saw_dist = true;
            EXPECT_DOUBLE_EQ(record.find("count")->asNumber(), 2.0);
            EXPECT_DOUBLE_EQ(record.find("mean")->asNumber(), 20.0);
            EXPECT_DOUBLE_EQ(record.find("min")->asNumber(), 10.0);
            EXPECT_DOUBLE_EQ(record.find("max")->asNumber(), 30.0);
            EXPECT_DOUBLE_EQ(record.find("p50")->asNumber(), 20.0);
            EXPECT_DOUBLE_EQ(record.find("p95")->asNumber(), 29.0);
            EXPECT_DOUBLE_EQ(record.find("p99")->asNumber(), 29.8);
        }
    }
    EXPECT_EQ(lines, 3u);
    EXPECT_TRUE(saw_counter);
    EXPECT_TRUE(saw_scalar);
    EXPECT_TRUE(saw_dist);
}

TEST(MetricsGlobal, SingletonIsDisabledByDefault)
{
    // Other test binaries rely on this: the registry must never
    // record unless a flag or a test enables it explicitly.
    EXPECT_FALSE(metrics().enabled());
}
