/**
 * @file
 * Figure 9: DPU runtime decomposed into issued (active) cycles and
 * idle cycles by stall reason -- memory, revolver pipeline, register-
 * file structural hazard, and synchronization -- for SpMV (DCOO) and
 * SpMSpV (CSC-2D) at input densities of 1%, 10%, and 50%.
 *
 * The paper folds mutex-contention idleness into the revolver
 * category; both the split and the combined number are printed.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/kernels.hh"

using namespace alphapim;
using namespace alphapim::bench;
using namespace alphapim::core;
using alphapim::upmem::StallReason;

int
main(int argc, char **argv)
{
    const auto opt = parseOptions(argc, argv);
    printRunHeader("Figure 9: DPU active/idle cycle breakdown", opt);

    const auto names = datasetList(opt, {"A302", "e-En", "face"});
    const auto sys = makeSystem(opt.dpus);
    const std::vector<double> densities = {0.01, 0.10, 0.50};

    RunRecorder recorder(opt, "fig09");
    TextTable table("fraction of DPU cycles (aggregated over DPUs)");
    table.setHeader({"dataset", "kernel", "density", "issued",
                     "memory", "revolver", "rf-hazard", "sync",
                     "revolver+sync"});
    for (const auto &name : names) {
        const auto data = loadDataset(name, opt);
        const NodeId n = data.adjacency.numRows();
        const auto spmv = makeKernel<IntPlusTimes>(
            KernelVariant::SpmvDcoo2d, sys, data.adjacency, opt.dpus);
        const auto spmspv = makeKernel<IntPlusTimes>(
            KernelVariant::SpmspvCsc2d, sys, data.adjacency,
            opt.dpus);

        for (unsigned di = 0; di < densities.size(); ++di) {
            const auto x = randomInputVector<std::uint32_t>(
                n, densities[di], opt.seed + di, 1u, 8u);
            for (int which = 0; which < 2; ++which) {
                const auto &kernel = which == 0 ? spmv : spmspv;
                recorder.begin();
                const auto r = kernel->run(x);
                const auto &p = r.profile.aggregate;
                recorder.emit(
                    name,
                    std::string(which == 0 ? "spmv" : "spmspv") +
                        "/d" + TextTable::num(densities[di], 2),
                    r.times, &r.profile, 1);
                const double rev =
                    p.stallFraction(StallReason::Revolver);
                const double sync =
                    p.stallFraction(StallReason::Sync);
                table.addRow(
                    {name, which == 0 ? "SpMV" : "SpMSpV",
                     TextTable::pct(densities[di], 0),
                     TextTable::pct(p.issuedFraction(), 1),
                     TextTable::pct(
                         p.stallFraction(StallReason::Memory), 1),
                     TextTable::pct(rev, 1),
                     TextTable::pct(
                         p.stallFraction(StallReason::RfHazard), 1),
                     TextTable::pct(sync, 1),
                     TextTable::pct(rev + sync, 1)});
            }
        }
        table.addSeparator();
    }
    table.print();

    std::printf(
        "\npaper expectation: SpMSpV issued%% rises with density; "
        "SpMSpV@1%% shows elevated revolver+sync stalls; SpMV "
        "carries more memory stalls at every density\n");
    return writeTelemetryOutputs(opt);
}
