/**
 * @file
 * Figure 10: average number of active tasklets per cycle for SpMV
 * (DCOO) and SpMSpV (CSC-2D) at input densities of 1%, 10%, 50%.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/kernels.hh"

using namespace alphapim;
using namespace alphapim::bench;
using namespace alphapim::core;

int
main(int argc, char **argv)
{
    const auto opt = parseOptions(argc, argv);
    printRunHeader("Figure 10: average active threads per cycle",
                   opt);

    const auto names = datasetList(opt, {"A302", "e-En", "face"});
    const auto sys = makeSystem(opt.dpus);
    const unsigned tasklets = sys.config().dpu.tasklets;
    const std::vector<double> densities = {0.01, 0.10, 0.50};

    RunRecorder recorder(opt, "fig10");
    TextTable table("average active tasklets per cycle (max " +
                    std::to_string(tasklets) + ")");
    table.setHeader({"dataset", "density", "SpMV", "SpMSpV"});
    for (const auto &name : names) {
        const auto data = loadDataset(name, opt);
        const NodeId n = data.adjacency.numRows();
        const auto spmv = makeKernel<IntPlusTimes>(
            KernelVariant::SpmvDcoo2d, sys, data.adjacency, opt.dpus);
        const auto spmspv = makeKernel<IntPlusTimes>(
            KernelVariant::SpmspvCsc2d, sys, data.adjacency,
            opt.dpus);
        for (unsigned di = 0; di < densities.size(); ++di) {
            const auto x = randomInputVector<std::uint32_t>(
                n, densities[di], opt.seed + di, 1u, 8u);
            const std::string density_tag =
                "/d" + TextTable::num(densities[di], 2);
            recorder.begin();
            const auto rv = spmv->run(x);
            recorder.emit(name, "spmv" + density_tag, rv.times,
                          &rv.profile, 1);
            recorder.begin();
            const auto rs = spmspv->run(x);
            recorder.emit(name, "spmspv" + density_tag, rs.times,
                          &rs.profile, 1);
            table.addRow(
                {name, TextTable::pct(densities[di], 0),
                 TextTable::num(
                     rv.profile.aggregate.avgActiveThreads(), 2),
                 TextTable::num(
                     rs.profile.aggregate.avgActiveThreads(), 2)});
        }
        table.addSeparator();
    }
    table.print();

    std::printf("\npaper expectation: SpMSpV thread activity grows "
                "with density and exceeds SpMV's\n");
    return writeTelemetryOutputs(opt);
}
