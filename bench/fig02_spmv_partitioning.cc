/**
 * @file
 * Figure 2: execution time breakdown of the two top SparseP SpMV
 * partitioning schemes -- COO.nnz (1D) and DCOO (2D) -- with 2048
 * DPUs and INT32 data, normalized to the 1D total per dataset.
 *
 * Expected shape: 1D is dominated by the input-vector broadcast
 * (Load); 2D trades that for Retrieve + Merge and wins overall.
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/stats.hh"
#include "core/kernels.hh"

using namespace alphapim;
using namespace alphapim::bench;
using namespace alphapim::core;

int
main(int argc, char **argv)
{
    const auto opt = parseOptions(argc, argv);
    printRunHeader("Figure 2: SpMV 1D vs 2D partitioning breakdown",
                   opt);

    const auto names = datasetList(
        opt, {"A302", "as00", "ca-Q", "cit-HP", "e-En", "face",
              "loc-b", "p2p-24", "s-S02", "s-S11", "flk-E"});
    const auto sys = makeSystem(opt.dpus);

    RunRecorder recorder(opt, "fig02");
    TextTable table("normalized to the 1D total per dataset");
    table.setHeader({"dataset", "variant", "load", "kernel",
                     "retrieve", "merge", "total"});

    std::vector<double> ratio_2d_over_1d;
    for (const auto &name : names) {
        const auto data = loadDataset(name, opt);
        const NodeId n = data.adjacency.numRows();
        const auto x = randomInputVector<std::uint32_t>(
            n, 1.0, opt.seed, 1u, 8u);

        const auto spmv1d = makeKernel<IntPlusTimes>(
            KernelVariant::SpmvCoo1d, sys, data.adjacency, opt.dpus);
        const auto spmv2d = makeKernel<IntPlusTimes>(
            KernelVariant::SpmvDcoo2d, sys, data.adjacency, opt.dpus);

        recorder.begin();
        const auto r1 = spmv1d->run(x);
        recorder.emit(name, "spmv-coo1d", r1.times, &r1.profile, 1);
        recorder.begin();
        const auto r2 = spmv2d->run(x);
        recorder.emit(name, "spmv-dcoo2d", r2.times, &r2.profile, 1);
        const double norm = r1.times.total();

        auto cells1 = phaseCells(r1.times, norm);
        cells1.insert(cells1.begin(), {name, "1D (COO.nnz)"});
        table.addRow(cells1);
        auto cells2 = phaseCells(r2.times, norm);
        cells2.insert(cells2.begin(), {name, "2D (DCOO)"});
        table.addRow(cells2);
        table.addSeparator();

        ratio_2d_over_1d.push_back(r2.times.total() / norm);
    }
    table.addRow({"geomean", "2D / 1D total", "", "", "", "",
                  TextTable::num(geometricMean(ratio_2d_over_1d), 3)});
    table.print();

    std::printf("\npaper expectation: 1D Load dominates; 2D total < "
                "1D total on most datasets\n");
    return writeTelemetryOutputs(opt);
}
