/**
 * @file
 * Serving-latency figure: the query serving subsystem under a FIFO
 * scheduler vs the batching scheduler that coalesces same-graph
 * queries into one multi-source launch.
 *
 * Two seeded deterministic workloads per dataset:
 *   burst   -- an open-loop burst of 16 same-graph BFS queries at
 *              t=0 (the maximally batchable case: one 16-lane launch
 *              vs 16 sequential launches)
 *   closed  -- 8 think-free clients, 4 queries each, over a BFS-heavy
 *              BFS/SSSP mix (batch sizes emerge from queueing)
 *
 * Everything runs on the model clock, so every latency percentile
 * and throughput number is exactly reproducible; the committed
 * baseline gates with zero tolerance via alphapim_bench_diff. The
 * bench itself also asserts the tentpole claim -- batching must beat
 * FIFO on both queries/s and p95 latency for the burst workload --
 * and exits non-zero otherwise.
 */

#include <cstdio>

#include "bench_common.hh"
#include "serve/loadgen.hh"

using namespace alphapim;
using namespace alphapim::bench;

namespace
{

struct WorkloadResult
{
    perf::ServeSummary summary;
    core::PhaseTimes phases;
    std::uint64_t iterations = 0;
};

WorkloadResult
runWorkload(const upmem::UpmemSystem &sys, const std::string &name,
            const sparse::CooMatrix<float> &adjacency,
            const BenchOptions &opt, serve::SchedulerKind kind,
            bool closed, RunRecorder &recorder,
            const std::string &variant)
{
    serve::ServeOptions serve_opt;
    serve_opt.dpus = opt.dpus;
    serve_opt.scheduler = kind;
    serve::ServeEngine engine(sys, serve_opt);

    serve::LoadGenOptions load;
    load.seed = opt.seed;
    load.dataset = name;
    if (closed) {
        load.mix = {serve::ServeAlgo::Bfs, serve::ServeAlgo::Bfs,
                    serve::ServeAlgo::Bfs, serve::ServeAlgo::Sssp};
        load.clients = 8;
        load.queriesPerClient = 4;
    } else {
        load.mix = {serve::ServeAlgo::Bfs};
        load.queries = 16;
        load.arrivalRate = 0.0; // burst at t=0
    }

    recorder.begin();
    engine.loadDataset(name, adjacency);
    if (closed)
        serve::runClosedLoop(engine, load,
                             engine.datasetRows(name));
    else
        serve::runOpenLoop(
            engine,
            serve::openLoopQueries(load, engine.datasetRows(name)));

    WorkloadResult r;
    r.summary = engine.summary();
    r.phases = engine.phaseTotals();
    r.iterations = engine.servedIterations();
    recorder.emit(name, variant, r.phases, nullptr, r.iterations, 0,
                  &r.summary);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = parseOptions(argc, argv);
    printRunHeader(
        "Serving latency: FIFO vs batched multi-source coalescing",
        opt);

    const auto names = datasetList(opt, {"as00", "e-En"});
    const auto sys = makeSystem(opt.dpus);
    RunRecorder recorder(opt, "fig_serve_latency");

    bool batching_wins = true;
    for (const auto &name : names) {
        const auto data = loadDataset(name, opt);
        TextTable table(name + ": serving outcomes (model time)");
        table.setHeader({"workload", "scheduler", "batches",
                         "mean-bs", "p50 ms", "p95 ms", "q/s"});
        WorkloadResult burst[2];
        for (const bool closed : {false, true}) {
            for (const auto kind : {serve::SchedulerKind::Fifo,
                                    serve::SchedulerKind::Batching}) {
                const std::string workload =
                    closed ? "closed" : "burst";
                const auto r = runWorkload(
                    sys, name, data.adjacency, opt, kind, closed,
                    recorder,
                    std::string(serve::schedulerKindName(kind)) +
                        "/" + workload);
                if (!closed)
                    burst[kind == serve::SchedulerKind::Batching] =
                        r;
                const auto &s = r.summary;
                table.addRow(
                    {workload, serve::schedulerKindName(kind),
                     std::to_string(s.batches),
                     TextTable::num(s.meanBatchSize, 2),
                     TextTable::num(toMillis(s.latencyP50), 3),
                     TextTable::num(toMillis(s.latencyP95), 3),
                     TextTable::num(s.queriesPerSec, 1)});
            }
            table.addSeparator();
        }
        table.print();

        const auto &fifo = burst[0].summary;
        const auto &batched = burst[1].summary;
        const double speedup = fifo.queriesPerSec > 0.0
            ? batched.queriesPerSec / fifo.queriesPerSec
            : 0.0;
        std::printf("%s burst: batching %.1fx queries/s, p95 "
                    "%.3f ms vs %.3f ms\n\n",
                    name.c_str(), speedup,
                    toMillis(batched.latencyP95),
                    toMillis(fifo.latencyP95));
        if (batched.queriesPerSec <= fifo.queriesPerSec ||
            batched.latencyP95 >= fifo.latencyP95)
            batching_wins = false;
    }

    std::printf("batching win on every burst workload: %s\n",
                batching_wins ? "yes" : "NO");
    const int telemetry_status = writeTelemetryOutputs(opt);
    if (!batching_wins)
        return 1;
    return telemetry_status;
}
