/**
 * @file
 * Section 4.2.1 sensitivity analysis: sweep the SpMSpV->SpMV switch
 * threshold around the model's choice and report the change in total
 * application runtime. The paper finds that a 10-point deviation
 * costs <5% on average (e.g. +2.5% for A302 at 60% instead of 50%).
 */

#include <cstdio>

#include "apps/graph_apps.hh"
#include "bench_common.hh"
#include "common/stats.hh"
#include "core/adaptive.hh"
#include "sparse/generators.hh"
#include "sparse/graph_stats.hh"

using namespace alphapim;
using namespace alphapim::bench;

int
main(int argc, char **argv)
{
    const auto opt = parseOptions(argc, argv);
    printRunHeader(
        "Section 4.2.1: switch-threshold sensitivity sweep", opt);

    const auto names =
        datasetList(opt, {"A302", "e-En", "face", "r-PA"});
    const auto sys = makeSystem(opt.dpus);
    const core::KernelSwitchModel model;
    const std::vector<double> offsets = {-0.20, -0.10, 0.0, 0.10,
                                         0.20};

    RunRecorder recorder(opt, "sens_switch_threshold");
    TextTable table("BFS total time change vs the model threshold");
    table.setHeader({"dataset", "model thr", "-20pts", "-10pts",
                     "model", "+10pts", "+20pts"});
    std::vector<double> ten_point_deltas;
    for (const auto &name : names) {
        const auto data = loadDataset(name, opt);
        const NodeId source =
            sparse::largestComponentVertex(data.adjacency);
        const double base_thr = model.switchThreshold(data.stats);

        std::vector<double> totals;
        for (double off : offsets) {
            apps::AppConfig cfg;
            cfg.switchThreshold =
                std::clamp(base_thr + off, 0.01, 0.99);
            recorder.begin();
            const auto run =
                apps::runBfs(sys, data.adjacency, source, cfg);
            char off_tag[32];
            std::snprintf(off_tag, sizeof(off_tag), "BFS/off%+.2f",
                          off);
            recorder.emit(name, off_tag, run.total, &run.profile,
                          run.iterations.size());
            totals.push_back(run.total.total());
        }
        const double base = totals[2];
        std::vector<std::string> cells = {
            name, TextTable::pct(base_thr, 0)};
        for (std::size_t i = 0; i < offsets.size(); ++i) {
            const double change = (totals[i] - base) / base;
            cells.push_back(
                (change >= 0 ? "+" : "") +
                TextTable::pct(change, 1));
        }
        table.addRow(cells);
        ten_point_deltas.push_back(
            std::abs(totals[3] - base) / base);
        ten_point_deltas.push_back(
            std::abs(totals[1] - base) / base);
    }
    table.print();

    double avg = 0.0;
    for (double d : ten_point_deltas)
        avg += d;
    avg /= static_cast<double>(ten_point_deltas.size());
    std::printf("\naverage |change| for a 10-point deviation: %s "
                "(paper: <5%%)\n",
                TextTable::pct(avg, 1).c_str());
    return writeTelemetryOutputs(opt);
}
