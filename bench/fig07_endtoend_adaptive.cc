/**
 * @file
 * Figure 7: end-to-end ALPHA-PIM (adaptive kernel switching) vs the
 * SparseP SpMV-only baseline across BFS, SSSP, and PPR. The paper
 * reports average speedups of 1.72x / 1.34x / 1.22x.
 */

#include <cstdio>

#include "apps/graph_apps.hh"
#include "bench_common.hh"
#include "common/stats.hh"
#include "sparse/generators.hh"
#include "sparse/graph_stats.hh"

using namespace alphapim;
using namespace alphapim::bench;

namespace
{

apps::AppResult
runAlgo(const upmem::UpmemSystem &sys,
        const sparse::CooMatrix<float> &matrix, NodeId source,
        unsigned algo, core::MxvStrategy strategy)
{
    apps::AppConfig cfg;
    cfg.strategy = strategy;
    switch (algo) {
      case 0:
        return apps::runBfs(sys, matrix, source, cfg);
      case 1:
        return apps::runSssp(sys, matrix, source, cfg);
      default:
        cfg.pprTolerance = 0.0;
        return apps::runPpr(sys, matrix, source, cfg);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = parseOptions(argc, argv);
    printRunHeader(
        "Figure 7: ALPHA-PIM (adaptive) vs SparseP SpMV-only", opt);

    const auto names = datasetList(
        opt, {"A302", "as00", "s-S11", "p2p-24", "e-En", "face"});
    const auto sys = makeSystem(opt.dpus);
    const char *algo_names[] = {"BFS", "SSSP", "PPR"};
    const char *paper[] = {"1.72x", "1.34x", "1.22x"};

    RunRecorder recorder(opt, "fig07");
    TextTable table("total time per run (ms) and adaptive speedup");
    table.setHeader({"algo", "dataset", "SpMV-only", "adaptive",
                     "speedup", "spmspv/spmv launches"});
    for (unsigned algo = 0; algo < 3; ++algo) {
        std::vector<double> speedups;
        for (const auto &name : names) {
            const auto data = loadDataset(name, opt);
            Rng rng(opt.seed);
            sparse::CooMatrix<float> matrix = data.adjacency;
            if (algo == 1) {
                matrix = sparse::assignSymmetricWeights(
                    matrix, 1.0f, 64.0f, rng);
            }
            const NodeId source =
                sparse::largestComponentVertex(matrix);

            const std::string algo_tag = algo_names[algo];
            recorder.begin();
            const auto baseline = runAlgo(
                sys, matrix, source, algo,
                core::MxvStrategy::SpmvOnly);
            recorder.emit(name, algo_tag + "/spmv-only",
                          baseline.total, &baseline.profile,
                          baseline.iterations.size());
            recorder.begin();
            const auto adaptive = runAlgo(
                sys, matrix, source, algo,
                core::MxvStrategy::Adaptive);
            recorder.emit(name, algo_tag + "/adaptive",
                          adaptive.total, &adaptive.profile,
                          adaptive.iterations.size());

            const double speedup =
                baseline.total.total() / adaptive.total.total();
            speedups.push_back(speedup);
            table.addRow(
                {algo_names[algo], name,
                 TextTable::num(toMillis(baseline.total.total()), 2),
                 TextTable::num(toMillis(adaptive.total.total()), 2),
                 TextTable::num(speedup, 2) + "x",
                 std::to_string(adaptive.spmspvLaunches) + "/" +
                     std::to_string(adaptive.spmvLaunches)});
        }
        table.addRow({algo_names[algo], "geomean", "", "",
                      TextTable::num(geometricMean(speedups), 2) +
                          "x (paper avg " + paper[algo] + ")",
                      ""});
        table.addSeparator();
    }
    table.print();

    std::printf("\npaper expectation: adaptive switching beats "
                "SpMV-only on all three applications\n");
    return writeTelemetryOutputs(opt);
}
