/**
 * @file
 * Extension experiment: the SparseP 1D SpMV design space behind the
 * paper's section 3 choice of COO.nnz. Compares row-granular COO.row
 * and CSR.row against nnz-balanced COO.nnz (and the 2D DCOO) on
 * regular and skewed graphs. Expectation (from the SparseP study):
 * on skewed graphs, row-granular partitioning overloads the hub DPUs
 * and the kernel time balloons; nnz balancing fixes it.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/kernels.hh"

using namespace alphapim;
using namespace alphapim::bench;
using namespace alphapim::core;

int
main(int argc, char **argv)
{
    const auto opt = parseOptions(argc, argv);
    printRunHeader("Extension: SparseP 1D SpMV partition balance",
                   opt);

    const auto names =
        datasetList(opt, {"r-PA", "p2p-24", "e-En", "s-S11", "as00"});
    const auto sys = makeSystem(opt.dpus);
    const std::vector<KernelVariant> variants = {
        KernelVariant::SpmvCoo1d, KernelVariant::SpmvCooRow1d,
        KernelVariant::SpmvCsrRow1d, KernelVariant::SpmvDcoo2d};

    RunRecorder recorder(opt, "ext_sparsep_1d");
    TextTable table("kernel-phase time (ms) and total, dense input");
    table.setHeader({"dataset", "deg-std/avg", "variant", "kernel",
                     "total", "kernel vs COO.nnz"});
    for (const auto &name : names) {
        const auto data = loadDataset(name, opt);
        const NodeId n = data.adjacency.numRows();
        const auto x = randomInputVector<std::uint32_t>(
            n, 1.0, opt.seed, 1u, 8u);
        const double skew = data.stats.degreeStd /
                            std::max(1e-9, data.stats.avgDegree);

        double coo_nnz_kernel = 0.0;
        for (auto v : variants) {
            const auto kernel = makeKernel<IntPlusTimes>(
                v, sys, data.adjacency, opt.dpus);
            recorder.begin();
            const auto r = kernel->run(x);
            recorder.emit(name, kernelVariantName(v), r.times,
                          &r.profile, 1);
            if (v == KernelVariant::SpmvCoo1d)
                coo_nnz_kernel = r.times.kernel;
            table.addRow(
                {name, TextTable::num(skew, 2),
                 kernelVariantName(v),
                 TextTable::num(toMillis(r.times.kernel), 3),
                 TextTable::num(toMillis(r.times.total()), 3),
                 TextTable::num(r.times.kernel / coo_nnz_kernel, 2) +
                     "x"});
        }
        table.addSeparator();
    }
    table.print();

    std::printf("\nSparseP expectation: .row variants degrade with "
                "degree skew (hub DPUs serialize); COO.nnz stays "
                "balanced, which is why the paper uses it\n");
    return writeTelemetryOutputs(opt);
}
