#include "bench_common.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace alphapim::bench
{

namespace
{

/** Split "a,b,c" into tokens. */
std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        const std::size_t comma = s.find(',', start);
        if (comma == std::string::npos) {
            out.push_back(s.substr(start));
            break;
        }
        out.push_back(s.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

[[noreturn]] void
usage(const char *prog)
{
    std::fprintf(
        stderr,
        "usage: %s [--dpus N] [--scale X] [--edge-target N]\n"
        "          [--datasets a,b,c] [--seed N] [--quick]\n",
        prog);
    std::exit(2);
}

} // namespace

BenchOptions
parseOptions(int argc, char **argv)
{
    BenchOptions opt;
    if (const char *env = std::getenv("ALPHAPIM_SCALE"))
        opt.scale = std::atof(env);
    if (const char *env = std::getenv("ALPHAPIM_EDGE_TARGET"))
        opt.edgeTarget = std::strtoull(env, nullptr, 10);

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--dpus") {
            opt.dpus = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--scale") {
            opt.scale = std::atof(next());
        } else if (arg == "--edge-target") {
            opt.edgeTarget = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--datasets") {
            opt.datasets = splitCsv(next());
        } else if (arg == "--seed") {
            opt.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--quick") {
            opt.quick = true;
        } else {
            usage(argv[0]);
        }
    }
    if (opt.quick) {
        opt.dpus = std::min(opt.dpus, 256u);
        opt.edgeTarget = std::min<EdgeId>(opt.edgeTarget, 50'000);
        opt.roadEdgeTarget =
            std::min<EdgeId>(opt.roadEdgeTarget, 20'000);
    }
    return opt;
}

double
effectiveScale(const sparse::DatasetSpec &spec,
               const BenchOptions &opt)
{
    if (opt.scale > 0.0)
        return std::min(opt.scale, 1.0);
    const EdgeId target =
        spec.family == sparse::GraphFamily::Regular
            ? opt.roadEdgeTarget
            : opt.edgeTarget;
    if (spec.edges <= target)
        return 1.0;
    return static_cast<double>(target) /
           static_cast<double>(spec.edges);
}

sparse::Dataset
loadDataset(const std::string &abbreviation, const BenchOptions &opt)
{
    const auto &spec = sparse::findSpec(abbreviation);
    return sparse::buildDataset(spec, effectiveScale(spec, opt),
                                opt.seed);
}

std::vector<std::string>
datasetList(const BenchOptions &opt,
            const std::vector<std::string> &defaults)
{
    return opt.datasets.empty() ? defaults : opt.datasets;
}

upmem::UpmemSystem
makeSystem(unsigned dpus)
{
    upmem::SystemConfig cfg;
    cfg.numDpus = dpus;
    return upmem::UpmemSystem(cfg);
}

void
printRunHeader(const std::string &experiment, const BenchOptions &opt)
{
    std::printf("### %s\n", experiment.c_str());
    std::printf("# dpus=%u edge-target=%llu road-edge-target=%llu "
                "scale=%s seed=%llu%s\n",
                opt.dpus,
                static_cast<unsigned long long>(opt.edgeTarget),
                static_cast<unsigned long long>(opt.roadEdgeTarget),
                opt.scale > 0 ? TextTable::num(opt.scale, 3).c_str()
                              : "auto",
                static_cast<unsigned long long>(opt.seed),
                opt.quick ? " (quick)" : "");
}

std::vector<std::string>
phaseCells(const core::PhaseTimes &t, double norm)
{
    ALPHA_ASSERT(norm > 0.0, "normalization must be positive");
    return {TextTable::num(t.load / norm, 3),
            TextTable::num(t.kernel / norm, 3),
            TextTable::num(t.retrieve / norm, 3),
            TextTable::num(t.merge / norm, 3),
            TextTable::num(t.total() / norm, 3)};
}

} // namespace alphapim::bench
