#include "bench_common.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "analysis/checker.hh"
#include "analysis/imbalance.hh"
#include "common/cli.hh"
#include "common/logging.hh"
#include "perf/fingerprint.hh"
#include "perf/manifest.hh"
#include "perf/record.hh"
#include "telemetry/host_prof.hh"
#include "telemetry/telemetry.hh"
#include "telemetry/timeline.hh"

namespace alphapim::bench
{

namespace
{

/** Split "a,b,c" into tokens. */
std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        const std::size_t comma = s.find(',', start);
        if (comma == std::string::npos) {
            out.push_back(s.substr(start));
            break;
        }
        out.push_back(s.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

[[noreturn]] void
usage(const char *prog)
{
    std::fprintf(
        stderr,
        "usage: %s [--dpus N] [--scale X] [--edge-target N]\n"
        "          [--datasets a,b,c] [--seed N] [--quick]\n"
        "          [--trace-out FILE] [--metrics-out FILE]\n"
        "          [--json-out FILE] [--check[=FAMILIES]]\n"
        "          [--check-out FILE] [--check-inject KIND]\n"
        "          [--host-prof[=on|off]] [--log-level LEVEL]\n",
        prog);
    std::exit(2);
}

} // namespace

BenchOptions
parseOptions(int argc, char **argv)
{
    BenchOptions opt;
    std::string check_list;
    if (const char *env = std::getenv("ALPHAPIM_SCALE"))
        opt.scale = std::atof(env);
    if (const char *env = std::getenv("ALPHAPIM_EDGE_TARGET"))
        opt.edgeTarget = std::strtoull(env, nullptr, 10);

    // Accept both "--flag value" and "--flag=value".
    CliArgs args(argc, argv,
                 [argv](const std::string &) { usage(argv[0]); });
    while (args.next()) {
        const std::string &arg = args.arg();
        auto next = [&]() -> const char * { return args.value(); };
        if (arg == "--dpus") {
            opt.dpus = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--scale") {
            opt.scale = std::atof(next());
        } else if (arg == "--edge-target") {
            opt.edgeTarget = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--datasets") {
            opt.datasets = splitCsv(next());
        } else if (arg == "--seed") {
            opt.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--quick") {
            opt.quick = true;
        } else if (arg == "--trace-out") {
            opt.traceOut = next();
        } else if (arg == "--metrics-out") {
            opt.metricsOut = next();
        } else if (arg == "--json-out") {
            opt.jsonOut = next();
        } else if (arg == "--check") {
            opt.check = true;
            if (args.hasInlineValue())
                check_list = args.inlineValue();
        } else if (arg == "--check-out") {
            opt.check = true;
            opt.checkOut = next();
        } else if (arg == "--check-inject") {
            opt.check = true;
            opt.checkInject = next();
            bool known = false;
            for (unsigned k = 0; k < analysis::numFindingKinds; ++k)
                known = known ||
                        opt.checkInject ==
                            analysis::findingKindName(
                                static_cast<analysis::FindingKind>(k));
            if (!known) {
                std::fprintf(stderr,
                             "--check-inject: unknown kind '%s'\n",
                             opt.checkInject.c_str());
                usage(argv[0]);
            }
        } else if (arg == "--host-prof") {
            // Bare --host-prof means on; value form takes on|off.
            if (!args.hasInlineValue() ||
                args.inlineValue() == "on") {
                opt.hostProf = true;
            } else if (args.inlineValue() == "off") {
                opt.hostProf = false;
            } else {
                std::fprintf(stderr,
                             "--host-prof: expected on or off, got "
                             "'%s'\n",
                             args.inlineValue().c_str());
                usage(argv[0]);
            }
        } else if (arg == "--log-level") {
            opt.logLevel = next();
        } else {
            usage(argv[0]);
        }
    }
    if (opt.quick) {
        opt.dpus = std::min(opt.dpus, 256u);
        opt.edgeTarget = std::min<EdgeId>(opt.edgeTarget, 50'000);
        opt.roadEdgeTarget =
            std::min<EdgeId>(opt.roadEdgeTarget, 20'000);
    }
    if (!opt.logLevel.empty() &&
        !setLogLevelByName(opt.logLevel.c_str())) {
        std::fprintf(stderr, "unknown log level '%s'\n",
                     opt.logLevel.c_str());
        usage(argv[0]);
    }
    if (!opt.traceOut.empty()) {
        telemetry::tracer().setEnabled(true);
        // Stream to the output file in chunks so long traced runs
        // cannot exhaust memory; finishTraceOutput() completes the
        // document. Falls back to buffered mode on open failure.
        if (!telemetry::tracer().openStream(opt.traceOut))
            warn("cannot stream trace to '%s'; buffering instead",
                 opt.traceOut.c_str());
    }
    if (!opt.metricsOut.empty() || !opt.jsonOut.empty()) {
        telemetry::metrics().setEnabled(true);
        // Imbalance analytics ride on the same outputs: imbalance.*
        // / roofline.* metrics and the v4 record block.
        analysis::imbalance().setEnabled(true);
    }
    if (opt.hostProf &&
        (!opt.traceOut.empty() || !opt.metricsOut.empty() ||
         !opt.jsonOut.empty())) {
        // Host observatory rides on any telemetry output: host.*
        // metrics, the v5 record block, and the "host_profile"
        // instant trace event. Pure observation -- model metrics
        // are byte-identical with --host-prof=off.
        telemetry::hostProfiler().reset();
        telemetry::hostProfiler().setEnabled(true);
    }
    if (opt.check) {
        analysis::CheckOptions sel;
        std::string error;
        if (!analysis::CheckOptions::parseList(check_list, sel,
                                               &error)) {
            std::fprintf(stderr, "--check: %s\n", error.c_str());
            usage(argv[0]);
        }
        analysis::checker().enable(sel);
    }
    return opt;
}

double
effectiveScale(const sparse::DatasetSpec &spec,
               const BenchOptions &opt)
{
    if (opt.scale > 0.0)
        return std::min(opt.scale, 1.0);
    const EdgeId target =
        spec.family == sparse::GraphFamily::Regular
            ? opt.roadEdgeTarget
            : opt.edgeTarget;
    if (spec.edges <= target)
        return 1.0;
    return static_cast<double>(target) /
           static_cast<double>(spec.edges);
}

namespace
{

/** Fingerprints of the datasets loaded so far, by abbreviation. */
std::map<std::string, std::uint64_t> &
datasetFingerprints()
{
    static std::map<std::string, std::uint64_t> fps;
    return fps;
}

} // namespace

sparse::Dataset
loadDataset(const std::string &abbreviation, const BenchOptions &opt)
{
    const auto &spec = sparse::findSpec(abbreviation);
    sparse::Dataset ds = sparse::buildDataset(
        spec, effectiveScale(spec, opt), opt.seed);
    datasetFingerprints()[abbreviation] =
        perf::datasetFingerprint(ds.adjacency);
    return ds;
}

std::vector<std::string>
datasetList(const BenchOptions &opt,
            const std::vector<std::string> &defaults)
{
    return opt.datasets.empty() ? defaults : opt.datasets;
}

upmem::UpmemSystem
makeSystem(unsigned dpus)
{
    upmem::SystemConfig cfg;
    cfg.numDpus = dpus;
    return upmem::UpmemSystem(cfg);
}

void
printRunHeader(const std::string &experiment, const BenchOptions &opt)
{
    std::printf("### %s\n", experiment.c_str());
    std::printf("# dpus=%u edge-target=%llu road-edge-target=%llu "
                "scale=%s seed=%llu%s\n",
                opt.dpus,
                static_cast<unsigned long long>(opt.edgeTarget),
                static_cast<unsigned long long>(opt.roadEdgeTarget),
                opt.scale > 0 ? TextTable::num(opt.scale, 3).c_str()
                              : "auto",
                static_cast<unsigned long long>(opt.seed),
                opt.quick ? " (quick)" : "");
}

std::vector<std::string>
phaseCells(const core::PhaseTimes &t, double norm)
{
    ALPHA_ASSERT(norm > 0.0, "normalization must be positive");
    return {TextTable::num(t.load / norm, 3),
            TextTable::num(t.kernel / norm, 3),
            TextTable::num(t.retrieve / norm, 3),
            TextTable::num(t.merge / norm, 3),
            TextTable::num(t.total() / norm, 3)};
}

std::uint64_t
datasetFingerprintFor(const std::string &abbreviation)
{
    const auto &fps = datasetFingerprints();
    const auto it = fps.find(abbreviation);
    return it == fps.end() ? 0 : it->second;
}

namespace
{

constexpr const char *kXferCounters[6] = {
    "xfer.scatters",   "xfer.scatter_bytes",
    "xfer.gathers",    "xfer.gather_bytes",
    "xfer.broadcasts", "xfer.broadcast_bytes",
};

} // namespace

RunRecorder::RunRecorder(const BenchOptions &opt, std::string bench)
    : opt_(opt), bench_(std::move(bench))
{
    // Records carry a timeline summary, which needs spans; when the
    // user did not ask for a trace file, run the tracer privately.
    // Tracing only observes -- the model times are unaffected -- so
    // records stay identical with and without --trace-out.
    if (!opt_.jsonOut.empty() && !telemetry::tracer().enabled()) {
        telemetry::tracer().setEnabled(true);
        ownsTracer_ = true;
    }
}

RunRecorder::~RunRecorder()
{
    if (ownsTracer_) {
        telemetry::tracer().setEnabled(false);
        telemetry::tracer().clear();
    }
}

void
RunRecorder::begin()
{
    if (opt_.jsonOut.empty())
        return;
    began_ = true;
    // Benches that drive kernels directly never pass through
    // PimEngine's LaunchScope, so open a recording scope here --
    // the transfer model only counts xfer.* volume inside one.
    if (!recording_)
        recording_ =
            std::make_unique<telemetry::RecordingScope>();
    for (std::size_t i = 0; i < 6; ++i)
        xferStart_[i] =
            telemetry::metrics().counterValue(kXferCounters[i]);
    analysis::imbalance().beginRun();
    // Per-run host window: each record's host block covers exactly
    // one begin()..emit() span.
    telemetry::hostProfiler().reset();
    if (ownsTracer_) {
        // Private tracer: restart per run, so every timeline begins
        // at model time zero and memory stays bounded.
        telemetry::tracer().clear();
        eventStart_ = 0;
    } else {
        eventStart_ = telemetry::tracer().totalEventCount();
    }
    wallStart_ =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
}

void
RunRecorder::emit(const std::string &dataset,
                  const std::string &variant,
                  const core::PhaseTimes &times,
                  const upmem::LaunchProfile *profile,
                  std::size_t iterations, unsigned dpusOverride,
                  const perf::ServeSummary *serve)
{
    if (opt_.jsonOut.empty())
        return;

    perf::RunManifest manifest = perf::currentManifest();
    manifest.datasetFingerprint = datasetFingerprintFor(dataset);
    manifest.addConfig("edge_target",
                       static_cast<std::uint64_t>(opt_.edgeTarget));
    manifest.addConfig(
        "road_edge_target",
        static_cast<std::uint64_t>(opt_.roadEdgeTarget));
    if (opt_.scale > 0.0)
        manifest.addConfig("scale", opt_.scale);
    manifest.addConfig("quick", opt_.quick);

    perf::RunKey key;
    key.bench = bench_;
    key.dataset = dataset;
    key.variant = variant;
    key.dpus = dpusOverride != 0 ? dpusOverride : opt_.dpus;
    key.seed = opt_.seed;

    perf::XferCounts xfer;
    perf::TimelineSummary timeline;
    perf::ImbalanceSummary imbalance;
    perf::HostSummary host;
    double wall = -1.0;
    const perf::XferCounts *xfer_ptr = nullptr;
    const perf::TimelineSummary *timeline_ptr = nullptr;
    const perf::ImbalanceSummary *imbalance_ptr = nullptr;
    const perf::HostSummary *host_ptr = nullptr;
    if (began_) {
        std::uint64_t now[6];
        for (std::size_t i = 0; i < 6; ++i)
            now[i] = telemetry::metrics().counterValue(
                kXferCounters[i]);
        xfer.scatters = now[0] - xferStart_[0];
        xfer.scatterBytes = now[1] - xferStart_[1];
        xfer.gathers = now[2] - xferStart_[2];
        xfer.gatherBytes = now[3] - xferStart_[3];
        xfer.broadcasts = now[4] - xferStart_[4];
        xfer.broadcastBytes = now[5] - xferStart_[5];
        xfer_ptr = &xfer;
        const std::vector<telemetry::TraceEvent> events =
            telemetry::tracer().eventsSince(eventStart_);
        if (!events.empty()) {
            const telemetry::Timeline tl =
                telemetry::buildTimeline(events);
            if (!tl.launches.empty()) {
                const telemetry::TimelineStats stats =
                    telemetry::computeStats(tl);
                telemetry::recordTimelineMetrics(
                    stats, telemetry::metrics());
                timeline = perf::summarizeTimeline(tl, stats);
                timeline_ptr = &timeline;
            }
        }
        const analysis::RunImbalance run_imbalance =
            analysis::imbalance().collectRun();
        if (run_imbalance.launches > 0) {
            imbalance = perf::summarizeImbalance(run_imbalance);
            imbalance_ptr = &imbalance;
        }
        wall = std::chrono::duration<double>(
                   std::chrono::steady_clock::now()
                       .time_since_epoch())
                   .count() -
               wallStart_;
        if (telemetry::hostProfiler().enabled()) {
            // Publishes host.* metrics and the "host_profile" trace
            // event as a side effect, so --metrics-out/--trace-out
            // carry the same observatory data as the record.
            host = perf::summarizeHost(
                telemetry::publishHostProfile(times.total()));
            host_ptr = &host;
        }
        began_ = false;
        recording_.reset();
    }

    telemetry::appendJsonlRecord(
        opt_.jsonOut,
        perf::encodeRunRecord(manifest, key,
                              static_cast<std::uint64_t>(iterations),
                              times, profile, xfer_ptr, wall,
                              timeline_ptr, imbalance_ptr, host_ptr,
                              serve));
}

int
writeTelemetryOutputs(const BenchOptions &opt)
{
    if (telemetry::hostProfiler().enabled() && opt.jsonOut.empty()) {
        // Trace/metrics-only runs never pass through RunRecorder's
        // per-run publish; emit one whole-process profile so the
        // outputs still carry the observatory (model seconds unknown
        // here, so the slowdown factor reads 0 = n/a).
        telemetry::publishHostProfile(0.0);
    }
    if (!opt.traceOut.empty())
        telemetry::finishTraceOutput(opt.traceOut);
    if (!opt.metricsOut.empty())
        telemetry::writeMetricsFile(opt.metricsOut);
    if (!opt.check)
        return 0;

    if (!opt.checkInject.empty()) {
        for (unsigned k = 0; k < analysis::numFindingKinds; ++k) {
            const auto kind = static_cast<analysis::FindingKind>(k);
            if (opt.checkInject == analysis::findingKindName(kind)) {
                analysis::Finding f;
                f.kind = kind;
                f.detail =
                    "synthetic finding injected by --check-inject";
                analysis::checker().injectFinding(std::move(f));
            }
        }
    }
    return analysis::finalizeCheckReport(opt.checkOut);
}

} // namespace alphapim::bench
