/**
 * @file
 * Shared plumbing of the benchmark harness: option parsing, dataset
 * loading with automatic down-scaling, system construction, random
 * input vectors at a target density, and table formatting helpers.
 *
 * Every bench binary accepts:
 *   --dpus N          DPUs for the main experiment (default 2048)
 *   --scale X         force one generation scale for all datasets
 *   --edge-target N   auto-scale target for undirected edges
 *   --datasets a,b,c  override the figure's dataset list
 *   --seed N          RNG seed
 *   --quick           small configuration for smoke runs
 *   --trace-out FILE  Chrome trace-event JSON of the run
 *   --metrics-out FILE  metrics registry dump (JSONL)
 *   --json-out FILE   per-run result records (JSONL, appended)
 *   --check[=FAMS]    pim-verify trace analysis (race,lock,barrier,
 *                     dma); the bench exits 3 when findings exist
 *   --check-out FILE  JSON findings report (implies --check)
 *   --log-level L     silent|normal|verbose
 * (every flag also accepts the --flag=value spelling) plus
 * environment variables ALPHAPIM_SCALE / ALPHAPIM_EDGE_TARGET.
 * Down-scaled datasets keep their degree structure (DESIGN.md), so
 * figure *shapes* are preserved; EXPERIMENTS.md records the scales
 * used for the committed outputs.
 */

#ifndef ALPHA_PIM_BENCH_COMMON_HH
#define ALPHA_PIM_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "common/random.hh"
#include "common/table.hh"
#include "core/phase_times.hh"
#include "sparse/datasets.hh"
#include "sparse/sparse_vector.hh"
#include "upmem/upmem_system.hh"

namespace alphapim::bench
{

/** Parsed command-line options. */
struct BenchOptions
{
    unsigned dpus = 2048;
    double scale = 0.0; ///< 0 = auto from edgeTarget
    EdgeId edgeTarget = 200'000;
    EdgeId roadEdgeTarget = 40'000; ///< road graphs: high diameter
    std::uint64_t seed = 42;
    bool quick = false;
    std::vector<std::string> datasets;
    std::string traceOut;   ///< Chrome trace JSON path ("" = off)
    std::string metricsOut; ///< metrics JSONL path ("" = off)
    std::string jsonOut;    ///< per-run record JSONL path ("" = off)
    std::string checkOut;   ///< pim-verify JSON report ("" = off)
    std::string logLevel;   ///< "" = leave the level alone
    bool check = false;     ///< run the pim-verify analyzer
};

/** Parse argv; prints usage and exits on --help or bad flags.
 * Enables the telemetry tracer / metrics registry and applies the
 * log level as a side effect of the corresponding flags. */
BenchOptions parseOptions(int argc, char **argv);

/** Effective generation scale for one dataset spec. */
double effectiveScale(const sparse::DatasetSpec &spec,
                      const BenchOptions &opt);

/** Load (generate) one dataset honouring the options. */
sparse::Dataset loadDataset(const std::string &abbreviation,
                            const BenchOptions &opt);

/** Dataset list: the override, or the bench's default. */
std::vector<std::string> datasetList(
    const BenchOptions &opt,
    const std::vector<std::string> &defaults);

/** Build the simulated UPMEM machine with `dpus` DPUs. */
upmem::UpmemSystem makeSystem(unsigned dpus);

/** Banner with the run configuration (printed by every bench). */
void printRunHeader(const std::string &experiment,
                    const BenchOptions &opt);

/**
 * Deterministic random sparse input vector at (approximately) the
 * requested density.
 */
template <typename Value>
sparse::SparseVector<Value>
randomInputVector(NodeId n, double density, std::uint64_t seed,
                  Value value_lo, Value value_hi)
{
    Rng rng(seed);
    sparse::SparseVector<Value> x(n);
    for (NodeId i = 0; i < n; ++i) {
        if (rng.nextBernoulli(density)) {
            const auto span = static_cast<std::uint64_t>(
                value_hi - value_lo);
            const Value v = span == 0
                ? value_lo
                : static_cast<Value>(
                      value_lo +
                      static_cast<Value>(rng.nextBounded(span + 1)));
            x.append(i, v);
        }
    }
    if (x.nnz() == 0 && n > 0)
        x.append(static_cast<NodeId>(seed % n), value_hi);
    return x;
}

/** Format a PhaseTimes as "load kernel retrieve merge total" cells
 * normalized by `norm` (use 1.0 for absolute seconds). */
std::vector<std::string> phaseCells(const core::PhaseTimes &t,
                                    double norm);

/**
 * Append one per-run record to the --json-out JSONL file (no-op when
 * the flag is absent): bench + dataset + variant identification, the
 * run configuration, the phase breakdown, and, when a profile is
 * given, stall fractions and the instruction mix.
 *
 * @param opt        parsed bench options (provides the sink path)
 * @param bench      experiment name, e.g. "fig07"
 * @param dataset    dataset abbreviation
 * @param variant    strategy / configuration label of this run
 * @param times      accumulated phase times of the run
 * @param profile    accumulated DPU profile, or nullptr
 * @param iterations iteration count of the run (0 if n/a)
 */
void emitRunRecord(const BenchOptions &opt, const std::string &bench,
                   const std::string &dataset,
                   const std::string &variant,
                   const core::PhaseTimes &times,
                   const upmem::LaunchProfile *profile,
                   std::size_t iterations);

/** Write the --trace-out / --metrics-out files if requested, print
 * the pim-verify summary (and write --check-out) when --check is on.
 * Call once at the end of the bench's main().
 * @return the process exit code (3 when --check found defects) */
int writeTelemetryOutputs(const BenchOptions &opt);

} // namespace alphapim::bench

#endif // ALPHA_PIM_BENCH_COMMON_HH
