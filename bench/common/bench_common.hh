/**
 * @file
 * Shared plumbing of the benchmark harness: option parsing, dataset
 * loading with automatic down-scaling, system construction, random
 * input vectors at a target density, and table formatting helpers.
 *
 * Every bench binary accepts:
 *   --dpus N          DPUs for the main experiment (default 2048)
 *   --scale X         force one generation scale for all datasets
 *   --edge-target N   auto-scale target for undirected edges
 *   --datasets a,b,c  override the figure's dataset list
 *   --seed N          RNG seed
 *   --quick           small configuration for smoke runs
 * plus environment variables ALPHAPIM_SCALE / ALPHAPIM_EDGE_TARGET.
 * Down-scaled datasets keep their degree structure (DESIGN.md), so
 * figure *shapes* are preserved; EXPERIMENTS.md records the scales
 * used for the committed outputs.
 */

#ifndef ALPHA_PIM_BENCH_COMMON_HH
#define ALPHA_PIM_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "common/random.hh"
#include "common/table.hh"
#include "core/phase_times.hh"
#include "sparse/datasets.hh"
#include "sparse/sparse_vector.hh"
#include "upmem/upmem_system.hh"

namespace alphapim::bench
{

/** Parsed command-line options. */
struct BenchOptions
{
    unsigned dpus = 2048;
    double scale = 0.0; ///< 0 = auto from edgeTarget
    EdgeId edgeTarget = 200'000;
    EdgeId roadEdgeTarget = 40'000; ///< road graphs: high diameter
    std::uint64_t seed = 42;
    bool quick = false;
    std::vector<std::string> datasets;
};

/** Parse argv; prints usage and exits on --help or bad flags. */
BenchOptions parseOptions(int argc, char **argv);

/** Effective generation scale for one dataset spec. */
double effectiveScale(const sparse::DatasetSpec &spec,
                      const BenchOptions &opt);

/** Load (generate) one dataset honouring the options. */
sparse::Dataset loadDataset(const std::string &abbreviation,
                            const BenchOptions &opt);

/** Dataset list: the override, or the bench's default. */
std::vector<std::string> datasetList(
    const BenchOptions &opt,
    const std::vector<std::string> &defaults);

/** Build the simulated UPMEM machine with `dpus` DPUs. */
upmem::UpmemSystem makeSystem(unsigned dpus);

/** Banner with the run configuration (printed by every bench). */
void printRunHeader(const std::string &experiment,
                    const BenchOptions &opt);

/**
 * Deterministic random sparse input vector at (approximately) the
 * requested density.
 */
template <typename Value>
sparse::SparseVector<Value>
randomInputVector(NodeId n, double density, std::uint64_t seed,
                  Value value_lo, Value value_hi)
{
    Rng rng(seed);
    sparse::SparseVector<Value> x(n);
    for (NodeId i = 0; i < n; ++i) {
        if (rng.nextBernoulli(density)) {
            const auto span = static_cast<std::uint64_t>(
                value_hi - value_lo);
            const Value v = span == 0
                ? value_lo
                : static_cast<Value>(
                      value_lo +
                      static_cast<Value>(rng.nextBounded(span + 1)));
            x.append(i, v);
        }
    }
    if (x.nnz() == 0 && n > 0)
        x.append(static_cast<NodeId>(seed % n), value_hi);
    return x;
}

/** Format a PhaseTimes as "load kernel retrieve merge total" cells
 * normalized by `norm` (use 1.0 for absolute seconds). */
std::vector<std::string> phaseCells(const core::PhaseTimes &t,
                                    double norm);

} // namespace alphapim::bench

#endif // ALPHA_PIM_BENCH_COMMON_HH
