/**
 * @file
 * Shared plumbing of the benchmark harness: option parsing, dataset
 * loading with automatic down-scaling, system construction, random
 * input vectors at a target density, and table formatting helpers.
 *
 * Every bench binary accepts:
 *   --dpus N          DPUs for the main experiment (default 2048)
 *   --scale X         force one generation scale for all datasets
 *   --edge-target N   auto-scale target for undirected edges
 *   --datasets a,b,c  override the figure's dataset list
 *   --seed N          RNG seed
 *   --quick           small configuration for smoke runs
 *   --trace-out FILE  Chrome trace-event JSON of the run
 *   --metrics-out FILE  metrics registry dump (JSONL)
 *   --json-out FILE   per-run result records (JSONL, appended)
 *   --check[=FAMS]    pim-verify trace analysis (race,lock,barrier,
 *                     dma); the bench exits 3 when findings exist
 *   --check-out FILE  JSON findings report (implies --check)
 *   --check-inject KIND  fold one synthetic finding into the report
 *                     (exit-code regression tests)
 *   --host-prof[=on|off]  host-performance observatory (wall-clock
 *                     phase profiler + memory footprint); on by
 *                     default whenever telemetry output is requested,
 *                     =off disables it (model metrics are identical
 *                     either way -- the profiler only observes)
 *   --log-level L     silent|normal|verbose
 * (every flag also accepts the --flag=value spelling) plus
 * environment variables ALPHAPIM_SCALE / ALPHAPIM_EDGE_TARGET.
 * Down-scaled datasets keep their degree structure (DESIGN.md), so
 * figure *shapes* are preserved; EXPERIMENTS.md records the scales
 * used for the committed outputs.
 */

#ifndef ALPHA_PIM_BENCH_COMMON_HH
#define ALPHA_PIM_BENCH_COMMON_HH

#include <memory>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/table.hh"
#include "core/phase_times.hh"
#include "sparse/datasets.hh"
#include "sparse/sparse_vector.hh"
#include "upmem/upmem_system.hh"

namespace alphapim::telemetry
{
class RecordingScope;
}

namespace alphapim::perf
{
struct ServeSummary;
}

namespace alphapim::bench
{

/** Parsed command-line options. */
struct BenchOptions
{
    unsigned dpus = 2048;
    double scale = 0.0; ///< 0 = auto from edgeTarget
    EdgeId edgeTarget = 200'000;
    EdgeId roadEdgeTarget = 40'000; ///< road graphs: high diameter
    std::uint64_t seed = 42;
    bool quick = false;
    std::vector<std::string> datasets;
    std::string traceOut;   ///< Chrome trace JSON path ("" = off)
    std::string metricsOut; ///< metrics JSONL path ("" = off)
    std::string jsonOut;    ///< per-run record JSONL path ("" = off)
    std::string checkOut;   ///< pim-verify JSON report ("" = off)
    std::string checkInject; ///< synthetic finding kind ("" = off)
    std::string logLevel;   ///< "" = leave the level alone
    bool check = false;     ///< run the pim-verify analyzer

    /** Host-performance observatory; --host-prof=off clears it. Only
     * takes effect when some telemetry output is requested. */
    bool hostProf = true;
};

/** Parse argv; prints usage and exits on --help or bad flags.
 * Enables the telemetry tracer / metrics registry and applies the
 * log level as a side effect of the corresponding flags. */
BenchOptions parseOptions(int argc, char **argv);

/** Effective generation scale for one dataset spec. */
double effectiveScale(const sparse::DatasetSpec &spec,
                      const BenchOptions &opt);

/** Load (generate) one dataset honouring the options. */
sparse::Dataset loadDataset(const std::string &abbreviation,
                            const BenchOptions &opt);

/** Dataset list: the override, or the bench's default. */
std::vector<std::string> datasetList(
    const BenchOptions &opt,
    const std::vector<std::string> &defaults);

/** Build the simulated UPMEM machine with `dpus` DPUs. */
upmem::UpmemSystem makeSystem(unsigned dpus);

/** Banner with the run configuration (printed by every bench). */
void printRunHeader(const std::string &experiment,
                    const BenchOptions &opt);

/**
 * Deterministic random sparse input vector at (approximately) the
 * requested density.
 */
template <typename Value>
sparse::SparseVector<Value>
randomInputVector(NodeId n, double density, std::uint64_t seed,
                  Value value_lo, Value value_hi)
{
    Rng rng(seed);
    sparse::SparseVector<Value> x(n);
    for (NodeId i = 0; i < n; ++i) {
        if (rng.nextBernoulli(density)) {
            const auto span = static_cast<std::uint64_t>(
                value_hi - value_lo);
            const Value v = span == 0
                ? value_lo
                : static_cast<Value>(
                      value_lo +
                      static_cast<Value>(rng.nextBounded(span + 1)));
            x.append(i, v);
        }
    }
    if (x.nnz() == 0 && n > 0)
        x.append(static_cast<NodeId>(seed % n), value_hi);
    return x;
}

/** Format a PhaseTimes as "load kernel retrieve merge total" cells
 * normalized by `norm` (use 1.0 for absolute seconds). */
std::vector<std::string> phaseCells(const core::PhaseTimes &t,
                                    double norm);

/** Fingerprint of the last dataset returned by loadDataset() for
 * this abbreviation (0 when never loaded). */
std::uint64_t datasetFingerprintFor(const std::string &abbreviation);

/**
 * Appends one schema-tagged run record per measured run to the
 * --json-out JSONL file (no-op without the flag). Each record
 * carries the full provenance manifest -- schema version, git SHA,
 * build type/flags, dataset fingerprint, run configuration -- plus
 * the phase breakdown, the DPU profile when given, the xfer.*
 * transfer volume accrued since begin(), and the host wall-clock
 * duration of the measured region.
 *
 * Usage: construct once per bench, call begin() right before each
 * measured run, emit() right after it.
 */
class RunRecorder
{
  public:
    RunRecorder(const BenchOptions &opt, std::string bench);
    ~RunRecorder();

    /** Start a measured region: snapshot the xfer counters, the
     * trace-event position and the wall clock, and open a telemetry
     * recording scope so the transfer model counts
     * scatter/gather/broadcast volume even for benches that drive
     * kernels directly (outside PimEngine's LaunchScope). */
    void begin();

    /**
     * Append the record for the run started by the last begin().
     *
     * @param dataset    dataset abbreviation ("-" if n/a)
     * @param variant    strategy / configuration label of this run
     * @param times      accumulated phase times of the run
     * @param profile    accumulated DPU profile, or nullptr
     * @param iterations iteration count of the run (0 if n/a)
     * @param dpusOverride DPU count of this run when it differs
     *                     from opt.dpus (0 = use opt.dpus)
     * @param serve      serving summary (the record's "serve"
     *                   block), or nullptr for non-serving runs
     */
    void emit(const std::string &dataset, const std::string &variant,
              const core::PhaseTimes &times,
              const upmem::LaunchProfile *profile,
              std::size_t iterations, unsigned dpusOverride = 0,
              const perf::ServeSummary *serve = nullptr);

  private:
    const BenchOptions &opt_;
    std::string bench_;
    bool began_ = false;
    double wallStart_ = 0.0;
    std::uint64_t xferStart_[6] = {};
    std::unique_ptr<telemetry::RecordingScope> recording_;

    /** True when this recorder enabled the tracer itself (records
     * requested but no --trace-out): spans are then recorded purely
     * to reconstruct the per-run execution timeline, and the buffer
     * is cleared at each begin() to keep memory bounded. */
    bool ownsTracer_ = false;
    std::size_t eventStart_ = 0; ///< trace position at begin()
};

/** Write the --trace-out / --metrics-out files if requested, print
 * the pim-verify summary (and write --check-out) when --check is on.
 * Call once at the end of the bench's main().
 * @return the process exit code (3 when --check found defects) */
int writeTelemetryOutputs(const BenchOptions &opt);

} // namespace alphapim::bench

#endif // ALPHA_PIM_BENCH_COMMON_HH
