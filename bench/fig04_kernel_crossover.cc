/**
 * @file
 * Figure 4: per-iteration execution time of BFS and SSSP under the
 * SpMV-only and SpMSpV-only strategies, with the input-vector
 * density per iteration -- the evidence behind adaptive switching.
 * Datasets: A302 (scale-free) and r-TX (regular), as in the paper.
 */

#include <cstdio>

#include "apps/graph_apps.hh"
#include "bench_common.hh"
#include "sparse/generators.hh"
#include "sparse/graph_stats.hh"

using namespace alphapim;
using namespace alphapim::bench;

namespace
{

void
runOne(const upmem::UpmemSystem &sys, const sparse::Dataset &data,
       bool sssp, const BenchOptions &opt, RunRecorder &recorder)
{
    Rng rng(opt.seed);
    sparse::CooMatrix<float> matrix = data.adjacency;
    if (sssp)
        matrix = sparse::assignSymmetricWeights(matrix, 1.0f, 64.0f,
                                                rng);
    const NodeId source = sparse::largestComponentVertex(matrix);

    apps::AppConfig spmv_cfg, spmspv_cfg;
    spmv_cfg.strategy = core::MxvStrategy::SpmvOnly;
    spmspv_cfg.strategy = core::MxvStrategy::SpmspvOnly;

    const std::string algo_tag = sssp ? "SSSP" : "BFS";
    recorder.begin();
    const auto run_spmv =
        sssp ? apps::runSssp(sys, matrix, source, spmv_cfg)
             : apps::runBfs(sys, matrix, source, spmv_cfg);
    recorder.emit(data.spec.abbreviation, algo_tag + "/spmv-only",
                  run_spmv.total, &run_spmv.profile,
                  run_spmv.iterations.size());
    recorder.begin();
    const auto run_spmspv =
        sssp ? apps::runSssp(sys, matrix, source, spmspv_cfg)
             : apps::runBfs(sys, matrix, source, spmspv_cfg);
    recorder.emit(data.spec.abbreviation, algo_tag + "/spmspv-only",
                  run_spmspv.total, &run_spmspv.profile,
                  run_spmspv.iterations.size());

    TextTable table(std::string(sssp ? "SSSP" : "BFS") + " on " +
                    data.spec.abbreviation +
                    " (per-iteration time, ms)");
    table.setHeader({"iter", "density", "SpMV-only", "SpMSpV-only"});
    const std::size_t iters = std::max(run_spmv.iterations.size(),
                                       run_spmspv.iterations.size());
    for (std::size_t i = 0; i < iters; ++i) {
        const auto *a = i < run_spmv.iterations.size()
                            ? &run_spmv.iterations[i]
                            : nullptr;
        const auto *b = i < run_spmspv.iterations.size()
                            ? &run_spmspv.iterations[i]
                            : nullptr;
        const double density =
            a ? a->inputDensity : b->inputDensity;
        table.addRow(
            {std::to_string(i + 1), TextTable::pct(density, 1),
             a ? TextTable::num(toMillis(a->times.total()), 3) : "-",
             b ? TextTable::num(toMillis(b->times.total()), 3)
               : "-"});
    }
    table.addSeparator();
    table.addRow({"total", "",
                  TextTable::num(toMillis(run_spmv.total.total()), 2),
                  TextTable::num(toMillis(run_spmspv.total.total()),
                                 2)});
    table.print();
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = parseOptions(argc, argv);
    printRunHeader(
        "Figure 4: per-iteration SpMV vs SpMSpV (BFS, SSSP)", opt);

    const auto names = datasetList(opt, {"A302", "r-TX"});
    const auto sys = makeSystem(opt.dpus);
    RunRecorder recorder(opt, "fig04");
    for (const auto &name : names) {
        const auto data = loadDataset(name, opt);
        runOne(sys, data, /*sssp=*/false, opt, recorder);
        runOne(sys, data, /*sssp=*/true, opt, recorder);
    }
    std::printf("paper expectation: SpMSpV wins at low density, "
                "SpMV steady; crossover as the frontier densifies\n");
    return writeTelemetryOutputs(opt);
}
