/**
 * @file
 * Table 2: characteristics of the representative datasets. Each
 * synthetic dataset is generated and measured; both the measured
 * statistics and the paper's targets are printed side by side.
 */

#include <cstdio>

#include "bench_common.hh"
#include "sparse/datasets.hh"

using namespace alphapim;
using namespace alphapim::bench;
using namespace alphapim::sparse;

namespace
{

std::string
sci(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2E", v);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = parseOptions(argc, argv);
    printRunHeader("Table 2: dataset characteristics", opt);

    RunRecorder recorder(opt, "table2");
    TextTable table("generated datasets vs paper targets "
                    "(measured | target)");
    table.setHeader({"dataset", "abbrev", "family", "scale", "edges",
                     "nodes", "avg-deg", "deg-std", "sparsity"});
    for (const auto &spec : table2Specs()) {
        const double scale = effectiveScale(spec, opt);
        recorder.begin();
        const auto data = loadDataset(spec.abbreviation, opt);
        // No model run here: the record's value is the dataset
        // fingerprint in its manifest, which lets the differ catch
        // generator drift.
        recorder.emit(spec.abbreviation, "generate", {}, nullptr, 0);
        const auto &s = data.stats;
        auto pair = [](const std::string &measured,
                       const std::string &target) {
            return measured + " | " + target;
        };
        table.addRow(
            {spec.name, spec.abbreviation,
             graphFamilyName(spec.family), TextTable::num(scale, 3),
             pair(std::to_string(s.edges),
                  std::to_string(static_cast<EdgeId>(
                      spec.edges * scale))),
             pair(std::to_string(s.nodes),
                  std::to_string(static_cast<NodeId>(
                      spec.nodes * scale))),
             pair(TextTable::num(s.avgDegree, 2),
                  TextTable::num(spec.avgDegree, 2)),
             pair(TextTable::num(s.degreeStd, 2),
                  TextTable::num(spec.degreeStd, 2)),
             sci(s.sparsity)});
    }
    table.print();

    std::printf("\nnote: degree std of heavy-tailed graphs "
                "undershoots the target because the erased "
                "configuration model drops colliding hub stubs\n");
    return writeTelemetryOutputs(opt);
}
