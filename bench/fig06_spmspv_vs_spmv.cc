/**
 * @file
 * Figure 6: best SpMV (SparseP DCOO) vs best SpMSpV (CSC-2D) at
 * input-vector densities of 1%, 10%, 30% and 50%, normalized to the
 * SpMV total per dataset, plus the geometric mean.
 */

#include <cstdio>
#include <map>

#include "bench_common.hh"
#include "common/stats.hh"
#include "core/kernels.hh"

using namespace alphapim;
using namespace alphapim::bench;
using namespace alphapim::core;

int
main(int argc, char **argv)
{
    const auto opt = parseOptions(argc, argv);
    printRunHeader("Figure 6: SpMSpV (CSC-2D) vs SpMV (DCOO)", opt);

    const auto names = datasetList(
        opt, {"A302", "as00", "s-S11", "p2p-24", "e-En", "face"});
    const auto sys = makeSystem(opt.dpus);
    const std::vector<double> densities = {0.01, 0.10, 0.30, 0.50};

    std::map<unsigned, std::vector<double>> ratios;
    RunRecorder recorder(opt, "fig06");
    for (const auto &name : names) {
        const auto data = loadDataset(name, opt);
        const NodeId n = data.adjacency.numRows();
        const auto spmv = makeKernel<IntPlusTimes>(
            KernelVariant::SpmvDcoo2d, sys, data.adjacency, opt.dpus);
        const auto spmspv = makeKernel<IntPlusTimes>(
            KernelVariant::SpmspvCsc2d, sys, data.adjacency,
            opt.dpus);

        TextTable table(name + " (normalized to SpMV per density)");
        table.setHeader({"density", "kernel", "load", "kernel-t",
                         "retrieve", "merge", "total"});
        for (unsigned di = 0; di < densities.size(); ++di) {
            const auto x = randomInputVector<std::uint32_t>(
                n, densities[di], opt.seed + di, 1u, 8u);
            const std::string density_tag =
                "/d" + TextTable::num(densities[di], 2);
            recorder.begin();
            const auto rv = spmv->run(x);
            recorder.emit(name, "spmv" + density_tag, rv.times,
                          &rv.profile, 1);
            recorder.begin();
            const auto rs = spmspv->run(x);
            recorder.emit(name, "spmspv" + density_tag, rs.times,
                          &rs.profile, 1);
            const double norm = rv.times.total();

            auto cv = phaseCells(rv.times, norm);
            cv.insert(cv.begin(),
                      {TextTable::pct(densities[di], 0), "SpMV"});
            table.addRow(cv);
            auto cs = phaseCells(rs.times, norm);
            cs.insert(cs.begin(), {"", "SpMSpV"});
            table.addRow(cs);
            table.addSeparator();
            ratios[di].push_back(rs.times.total() / norm);
        }
        table.print();
        std::printf("\n");
    }

    TextTable geo("geometric mean: SpMSpV total / SpMV total");
    geo.setHeader({"density", "ratio"});
    for (unsigned di = 0; di < densities.size(); ++di) {
        geo.addRow({TextTable::pct(densities[di], 0),
                    TextTable::num(geometricMean(ratios[di]), 3)});
    }
    geo.print();

    std::printf("\npaper expectation: SpMSpV < 1.0 at every density, "
                "with the largest wins below 30%% and rough parity "
                "at 50%%\n");
    return writeTelemetryOutputs(opt);
}
