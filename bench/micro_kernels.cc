/**
 * @file
 * google-benchmark microbenchmarks of the simulation infrastructure
 * itself: revolver-scheduler replay throughput, trace generation,
 * partitioned-block construction, and one full SpMSpV launch. These
 * bound the wall-clock cost of the figure benches.
 */

#include <benchmark/benchmark.h>

#include "common/random.hh"
#include "core/kernels.hh"
#include "sparse/generators.hh"
#include "upmem/scheduler.hh"

using namespace alphapim;

namespace
{

void
BM_SchedulerReplay(benchmark::State &state)
{
    upmem::DpuConfig cfg;
    cfg.tasklets = 16;
    upmem::RevolverScheduler sched(cfg);
    std::vector<upmem::TaskletTrace> traces(16);
    const auto ops_per_tasklet =
        static_cast<std::uint32_t>(state.range(0));
    for (auto &t : traces) {
        for (unsigned chunk = 0; chunk < 16; ++chunk) {
            t.ops(upmem::OpClass::IntAdd, ops_per_tasklet / 32);
            t.dmaRead(1024);
            t.ops(upmem::OpClass::Compare, ops_per_tasklet / 32);
        }
    }
    for (auto _ : state) {
        auto profile = sched.run(traces);
        benchmark::DoNotOptimize(profile.totalCycles);
    }
    state.SetItemsProcessed(state.iterations() * 16 *
                            ops_per_tasklet);
}

void
BM_SpmspvLaunch(benchmark::State &state)
{
    Rng rng(1);
    const auto list = sparse::generateScaleMatched(
        static_cast<NodeId>(state.range(0)), 10, 30, rng);
    const auto adj = sparse::edgeListToSymmetricCoo(list);
    upmem::SystemConfig sys_cfg;
    sys_cfg.numDpus = 64;
    const upmem::UpmemSystem sys(sys_cfg);
    const core::CscSpmspv<core::IntPlusTimes> kernel(
        sys, adj, 64, core::CscMode::Grid);

    sparse::SparseVector<std::uint32_t> x(adj.numRows());
    for (NodeId i = 0; i < adj.numRows(); i += 10)
        x.append(i, 1u);

    for (auto _ : state) {
        auto result = kernel.run(x);
        benchmark::DoNotOptimize(result.outputNnz);
    }
    state.SetItemsProcessed(state.iterations() * adj.nnz());
}

void
BM_GridPartitioning(benchmark::State &state)
{
    Rng rng(2);
    const auto list = sparse::generateScaleMatched(
        static_cast<NodeId>(state.range(0)), 10, 30, rng);
    const auto adj = sparse::edgeListToSymmetricCoo(list);
    for (auto _ : state) {
        const auto grid = core::makeGrid2d(adj, 256);
        auto blocks = core::buildGridBlocks(
            adj, grid, core::BlockOrder::ColMajor);
        benchmark::DoNotOptimize(blocks.size());
    }
    state.SetItemsProcessed(state.iterations() * adj.nnz());
}

void
BM_DatasetGeneration(benchmark::State &state)
{
    for (auto _ : state) {
        Rng rng(3);
        const auto list = sparse::generateScaleMatched(
            static_cast<NodeId>(state.range(0)), 12, 40, rng);
        benchmark::DoNotOptimize(list.edges.size());
    }
}

} // namespace

BENCHMARK(BM_SchedulerReplay)->Arg(1 << 10)->Arg(1 << 14);
BENCHMARK(BM_SpmspvLaunch)->Arg(5'000)->Arg(20'000);
BENCHMARK(BM_GridPartitioning)->Arg(20'000);
BENCHMARK(BM_DatasetGeneration)->Arg(50'000);

BENCHMARK_MAIN();
