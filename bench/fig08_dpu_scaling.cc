/**
 * @file
 * Figure 8: phase breakdown of BFS, SSSP, and PPR across DPU counts
 * (512 / 1024 / 2048), normalized to the 512-DPU total per dataset.
 *
 * Expected shape: BFS/SSSP dominated by Load+Retrieve (vector
 * exchange between iterations); PPR kernel-dominated (software
 * floats); 2048 DPUs pays more for input-vector distribution and
 * only PPR keeps scaling.
 */

#include <cstdio>

#include "apps/graph_apps.hh"
#include "bench_common.hh"
#include "common/stats.hh"
#include "sparse/generators.hh"
#include "sparse/graph_stats.hh"

using namespace alphapim;
using namespace alphapim::bench;

int
main(int argc, char **argv)
{
    auto opt = parseOptions(argc, argv);
    if (!opt.quick) {
        // Scaling behaviour needs per-DPU work comparable to the
        // paper's regime (full-size datasets on 512-2048 DPUs), so
        // this figure uses a larger default edge budget.
        opt.edgeTarget = std::max<EdgeId>(opt.edgeTarget, 300'000);
    }
    printRunHeader("Figure 8: application scaling with DPU count",
                   opt);

    const auto names = datasetList(opt, {"A302", "e-En", "face"});
    std::vector<unsigned> dpu_counts = {512, 1024, 2048};
    if (opt.quick)
        dpu_counts = {64, 128, 256};
    const char *algo_names[] = {"BFS", "SSSP", "PPR"};

    // Per (algo, dpu-index): total-time ratios vs the smallest count.
    std::vector<std::vector<double>> ratios(
        3, std::vector<double>());
    std::vector<std::vector<std::vector<double>>> ratio_acc(
        3,
        std::vector<std::vector<double>>(dpu_counts.size()));

    RunRecorder recorder(opt, "fig08");
    TextTable table(
        "phase breakdown normalized to the smallest DPU count");
    table.setHeader({"algo", "dataset", "dpus", "load", "kernel",
                     "retrieve", "merge", "total"});
    for (unsigned algo = 0; algo < 3; ++algo) {
        for (const auto &name : names) {
            const auto data = loadDataset(name, opt);
            Rng rng(opt.seed);
            sparse::CooMatrix<float> matrix = data.adjacency;
            if (algo == 1) {
                matrix = sparse::assignSymmetricWeights(
                    matrix, 1.0f, 64.0f, rng);
            }
            const NodeId source =
                sparse::largestComponentVertex(matrix);

            double norm = 0.0;
            for (unsigned di = 0; di < dpu_counts.size(); ++di) {
                const auto sys = makeSystem(dpu_counts[di]);
                apps::AppConfig cfg;
                if (algo == 2)
                    cfg.pprTolerance = 0.0;
                apps::AppResult run;
                recorder.begin();
                switch (algo) {
                  case 0:
                    run = apps::runBfs(sys, matrix, source, cfg);
                    break;
                  case 1:
                    run = apps::runSssp(sys, matrix, source, cfg);
                    break;
                  default:
                    run = apps::runPpr(sys, matrix, source, cfg);
                }
                recorder.emit(name, algo_names[algo], run.total,
                              &run.profile, run.iterations.size(),
                              dpu_counts[di]);
                if (di == 0)
                    norm = run.total.total();
                auto cells = phaseCells(run.total, norm);
                cells.insert(cells.begin(),
                             {algo_names[algo], name,
                              std::to_string(dpu_counts[di])});
                table.addRow(cells);
                ratio_acc[algo][di].push_back(run.total.total() /
                                              norm);
            }
            table.addSeparator();
        }
    }
    table.print();

    std::printf("\n");
    TextTable geo("geomean total vs smallest DPU count");
    geo.setHeader({"algo", std::to_string(dpu_counts[0]),
                   std::to_string(dpu_counts[1]),
                   std::to_string(dpu_counts[2])});
    for (unsigned algo = 0; algo < 3; ++algo) {
        geo.addRow({algo_names[algo],
                    TextTable::num(
                        geometricMean(ratio_acc[algo][0]), 3),
                    TextTable::num(
                        geometricMean(ratio_acc[algo][1]), 3),
                    TextTable::num(
                        geometricMean(ratio_acc[algo][2]), 3)});
    }
    geo.print();

    std::printf("\npaper expectation: BFS/SSSP transfer-bound with "
                "limited gains past 1024 DPUs; PPR keeps scaling\n");
    return writeTelemetryOutputs(opt);
}
