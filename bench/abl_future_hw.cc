/**
 * @file
 * Ablation of the paper's hardware recommendations (sections 6.3.1,
 * 6.4, and the conclusion): starting from the baseline UPMEM model,
 * enable one proposed enhancement at a time and measure the three
 * applications end to end:
 *
 *   forwarding   - intra-thread data forwarding for independent
 *                  instructions (revolver gap 11 -> 4)
 *   nb-dma       - non-blocking DMA (tasklets compute during
 *                  transfers)
 *   hw-atomics   - single-instruction atomic updates instead of
 *                  mutex spin loops
 *   hw-float     - hardware floating point (no software emulation)
 *   interconnect - direct inter-DPU network for vector exchange
 *                  (no host round-trip between iterations)
 *   all          - everything combined
 */

#include <cstdio>
#include <functional>

#include "apps/graph_apps.hh"
#include "bench_common.hh"
#include "sparse/generators.hh"
#include "sparse/graph_stats.hh"

using namespace alphapim;
using namespace alphapim::bench;

namespace
{

struct Variant
{
    const char *name;
    std::function<void(upmem::SystemConfig &)> apply;
};

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = parseOptions(argc, argv);
    printRunHeader(
        "Ablation: future PIM hardware recommendations", opt);

    const auto names = datasetList(opt, {"e-En"});
    const std::vector<Variant> variants = {
        {"baseline", [](upmem::SystemConfig &) {}},
        {"forwarding",
         [](upmem::SystemConfig &c) { c.dpu.revolverGap = 4; }},
        {"nb-dma",
         [](upmem::SystemConfig &c) { c.dpu.nonBlockingDma = true; }},
        {"hw-atomics",
         [](upmem::SystemConfig &c) {
             c.dpu.hardwareAtomics = true;
         }},
        {"hw-float",
         [](upmem::SystemConfig &c) {
             c.dpu.floatAddInstrs = 1;
             c.dpu.floatMulInstrs = 1;
         }},
        {"interconnect",
         [](upmem::SystemConfig &c) {
             c.transfer.directInterconnect = true;
         }},
        {"all",
         [](upmem::SystemConfig &c) {
             c.dpu.revolverGap = 4;
             c.dpu.nonBlockingDma = true;
             c.dpu.hardwareAtomics = true;
             c.dpu.floatAddInstrs = 1;
             c.dpu.floatMulInstrs = 1;
             c.transfer.directInterconnect = true;
         }},
    };
    const char *algo_names[] = {"BFS", "SSSP", "PPR"};

    RunRecorder recorder(opt, "abl_future_hw");
    for (const auto &name : names) {
        const auto data = loadDataset(name, opt);
        Rng rng(opt.seed);
        const auto weighted = sparse::assignSymmetricWeights(
            data.adjacency, 1.0f, 64.0f, rng);
        const NodeId source =
            sparse::largestComponentVertex(data.adjacency);

        TextTable table(std::string("total time (ms) on ") + name +
                        " and speedup vs baseline");
        table.setHeader({"variant", "BFS", "SSSP", "PPR",
                         "BFS x", "SSSP x", "PPR x"});
        double base[3] = {0, 0, 0};
        for (const auto &variant : variants) {
            upmem::SystemConfig cfg;
            cfg.numDpus = opt.dpus;
            variant.apply(cfg);
            const upmem::UpmemSystem sys(cfg);

            double totals[3];
            for (unsigned algo = 0; algo < 3; ++algo) {
                apps::AppConfig app_cfg;
                if (algo == 2) {
                    app_cfg.pprTolerance = 0.0;
                    app_cfg.pprIterations = 10;
                }
                apps::AppResult run;
                recorder.begin();
                switch (algo) {
                  case 0:
                    run = apps::runBfs(sys, data.adjacency, source,
                                       app_cfg);
                    break;
                  case 1:
                    run = apps::runSssp(sys, weighted, source,
                                        app_cfg);
                    break;
                  default:
                    run = apps::runPpr(sys, data.adjacency, source,
                                       app_cfg);
                }
                recorder.emit(name,
                              std::string(variant.name) + "/" +
                                  algo_names[algo],
                              run.total, &run.profile,
                              run.iterations.size());
                totals[algo] = run.total.total();
                if (variant.name == std::string("baseline"))
                    base[algo] = totals[algo];
            }
            table.addRow(
                {variant.name, TextTable::num(toMillis(totals[0]), 2),
                 TextTable::num(toMillis(totals[1]), 2),
                 TextTable::num(toMillis(totals[2]), 2),
                 TextTable::num(base[0] / totals[0], 2) + "x",
                 TextTable::num(base[1] / totals[1], 2) + "x",
                 TextTable::num(base[2] / totals[2], 2) + "x"});
        }
        table.print();
        std::printf("\n");
    }

    std::printf("paper expectation: the interconnect mainly helps "
                "transfer-bound BFS/SSSP; hw-float mainly helps "
                "kernel-bound PPR; forwarding/nb-dma lift kernel "
                "IPC everywhere\n");
    return writeTelemetryOutputs(opt);
}
