/**
 * @file
 * Figure 11: dynamic instruction mix (synchronization, arithmetic,
 * scratchpad, DMA, control) for SpMV (DCOO) and SpMSpV (CSC-2D) at
 * input densities of 1%, 10%, 50%.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/kernels.hh"

using namespace alphapim;
using namespace alphapim::bench;
using namespace alphapim::core;
using alphapim::upmem::OpCategory;

int
main(int argc, char **argv)
{
    const auto opt = parseOptions(argc, argv);
    printRunHeader("Figure 11: instruction mix", opt);

    const auto names = datasetList(opt, {"A302", "e-En", "face"});
    const auto sys = makeSystem(opt.dpus);
    const std::vector<double> densities = {0.01, 0.10, 0.50};

    RunRecorder recorder(opt, "fig11");
    TextTable table("share of dispatched instructions");
    table.setHeader({"dataset", "kernel", "density", "sync",
                     "arithmetic", "scratchpad", "dma", "control"});
    for (const auto &name : names) {
        const auto data = loadDataset(name, opt);
        const NodeId n = data.adjacency.numRows();
        const auto spmv = makeKernel<IntPlusTimes>(
            KernelVariant::SpmvDcoo2d, sys, data.adjacency, opt.dpus);
        const auto spmspv = makeKernel<IntPlusTimes>(
            KernelVariant::SpmspvCsc2d, sys, data.adjacency,
            opt.dpus);
        for (unsigned di = 0; di < densities.size(); ++di) {
            const auto x = randomInputVector<std::uint32_t>(
                n, densities[di], opt.seed + di, 1u, 8u);
            for (int which = 0; which < 2; ++which) {
                const auto &kernel = which == 0 ? spmv : spmspv;
                recorder.begin();
                const auto r = kernel->run(x);
                recorder.emit(
                    name,
                    std::string(which == 0 ? "spmv" : "spmspv") +
                        "/d" + TextTable::num(densities[di], 2),
                    r.times, &r.profile, 1);
                const auto &p = r.profile.aggregate;
                const double total = static_cast<double>(
                    p.totalInstructions());
                auto share = [&](OpCategory cat) {
                    return TextTable::pct(
                        static_cast<double>(
                            p.instructionsInCategory(cat)) /
                            total,
                        1);
                };
                table.addRow({name, which == 0 ? "SpMV" : "SpMSpV",
                              TextTable::pct(densities[di], 0),
                              share(OpCategory::Sync),
                              share(OpCategory::Arithmetic),
                              share(OpCategory::Scratchpad),
                              share(OpCategory::Dma),
                              share(OpCategory::Control)});
            }
        }
        table.addSeparator();
    }
    table.print();

    std::printf(
        "\npaper expectation: SpMSpV carries the larger sync share; "
        "SpMV has more arithmetic; scratchpad ops non-trivial "
        "everywhere. Known deviation (EXPERIMENTS.md): the paper's "
        "sync share falls with density, ours rises mildly with "
        "contention.\n");
    return writeTelemetryOutputs(opt);
}
