/**
 * @file
 * Table 4: CPU (GridGraph model) vs GPU (cuGraph model) vs the
 * simulated UPMEM system for BFS, SSSP and PPR on the six datasets
 * the paper tabulates -- execution time, compute utilization, and
 * energy -- plus the headline average speedups (paper: kernel
 * 10.2x/48.8x/3.6x and total 2.6x/10.4x/1.7x over the CPU).
 */

#include <cstdio>

#include "baseline/system_comparison.hh"
#include "bench_common.hh"
#include "common/stats.hh"

using namespace alphapim;
using namespace alphapim::bench;
using namespace alphapim::baseline;

int
main(int argc, char **argv)
{
    auto opt = parseOptions(argc, argv);
    if (!opt.quick) {
        // The CPU baseline's work shrinks with the dataset while the
        // PIM transfer floors do not, so this comparison needs
        // near-paper-size datasets to be meaningful (A302 at 900k
        // edges is the largest of the tabulated six).
        opt.edgeTarget = std::max<EdgeId>(opt.edgeTarget, 900'000);
    }
    printRunHeader("Table 4: system comparison (CPU / GPU / UPMEM)",
                   opt);

    // Table 3 recap.
    TextTable specs("Table 3: comparison system specs");
    specs.setHeader({"system", "compute", "frequency", "bandwidth",
                     "peak"});
    specs.addRow({"Intel i7-1265U (GridGraph)", "10C/12T", "1.8 GHz",
                  "83.2 GB/s", "647.25 GFLOPS"});
    specs.addRow({"NVIDIA RTX 3050 (cuGraph)", "2560 CUDA",
                  "1.55 GHz", "224 GB/s", "9.1 TFLOPS"});
    specs.addRow({"UPMEM (simulated)",
                  std::to_string(opt.dpus) + " DPUs", "350 MHz",
                  "rank-parallel", "4.66 GFLOPS"});
    specs.print();
    std::printf("\n");

    const auto names = datasetList(
        opt, {"A302", "as00", "s-S11", "p2p-24", "e-En", "face"});
    const auto sys = makeSystem(opt.dpus);
    const SystemComparison cmp(sys);
    const Algo algos[] = {Algo::Bfs, Algo::Sssp, Algo::Ppr};

    RunRecorder recorder(opt, "table4");
    TextTable table("execution time (ms) / utilization (%) / "
                    "energy (J)");
    table.setHeader({"algo", "dataset", "CPU ms", "GPU ms",
                     "UPMEM-K ms", "UPMEM-T ms", "CPU %", "GPU %",
                     "UPMEM-K %", "UPMEM-T %", "CPU J", "GPU J",
                     "UPMEM-K J", "UPMEM-T J"});

    for (Algo algo : algos) {
        std::vector<double> kernel_speedups, total_speedups;
        for (const auto &name : names) {
            const auto data = loadDataset(name, opt);
            apps::AppConfig cfg;
            if (algo == Algo::Ppr)
                cfg.pprTolerance = 0.0;
            recorder.begin();
            const auto row = cmp.compare(algo, data, cfg, opt.seed);
            recorder.emit(name, std::string(algoName(algo)) + "/upmem",
                          row.upmemTimes, &row.upmemProfile,
                          row.upmemIterations);
            table.addRow({algoName(algo), name,
                          TextTable::num(row.cpuMs, 2),
                          TextTable::num(row.gpuMs, 2),
                          TextTable::num(row.upmemKernelMs, 2),
                          TextTable::num(row.upmemTotalMs, 2),
                          TextTable::num(row.cpuUtilPct, 3),
                          TextTable::num(row.gpuUtilPct, 3),
                          TextTable::num(row.upmemKernelUtilPct, 2),
                          TextTable::num(row.upmemTotalUtilPct, 2),
                          TextTable::num(row.cpuJ, 2),
                          TextTable::num(row.gpuJ, 3),
                          TextTable::num(row.upmemKernelJ, 2),
                          TextTable::num(row.upmemTotalJ, 2)});
            kernel_speedups.push_back(row.cpuMs / row.upmemKernelMs);
            total_speedups.push_back(row.cpuMs / row.upmemTotalMs);
        }
        table.addRow(
            {algoName(algo), "avg speedup vs CPU", "", "",
             TextTable::num(geometricMean(kernel_speedups), 1) + "x",
             TextTable::num(geometricMean(total_speedups), 1) + "x",
             "", "", "", "", "", "", "", ""});
        table.addSeparator();
    }
    table.print();

    std::printf("\npaper headline: UPMEM kernel speedups over CPU of "
                "10.2x (BFS), 48.8x (SSSP), 3.6x (PPR); totals 2.6x "
                "/ 10.4x / 1.7x; GPU fastest overall; UPMEM has the "
                "highest compute utilization\n");
    return writeTelemetryOutputs(opt);
}
