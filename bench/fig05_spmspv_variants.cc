/**
 * @file
 * Figure 5: execution-time breakdown of the SpMSpV variants (COO,
 * CSC-R, CSC-C, CSC-2D) at input-vector densities of 1%, 10% and
 * 50%, normalized to COO per dataset, with the geometric mean across
 * datasets. Also reproduces the section 6.1 side note: CSR's
 * slowdown vs the other variants (measured on the small datasets, as
 * CSR is excluded from the figure for being 2.8x-25x slower).
 */

#include <cstdio>
#include <map>

#include "bench_common.hh"
#include "common/stats.hh"
#include "core/kernels.hh"

using namespace alphapim;
using namespace alphapim::bench;
using namespace alphapim::core;

int
main(int argc, char **argv)
{
    const auto opt = parseOptions(argc, argv);
    printRunHeader("Figure 5: SpMSpV variant breakdown by density",
                   opt);

    const auto names = datasetList(
        opt, {"face", "e-En", "s-S11", "p2p-24", "g-18", "r-PA"});
    const auto sys = makeSystem(opt.dpus);
    const std::vector<double> densities = {0.01, 0.10, 0.50};
    const std::vector<KernelVariant> variants = {
        KernelVariant::SpmspvCoo, KernelVariant::SpmspvCscR,
        KernelVariant::SpmspvCscC, KernelVariant::SpmspvCsc2d};

    // geomean accumulator: variant x density -> ratios vs COO
    std::map<std::pair<unsigned, unsigned>, std::vector<double>>
        ratios;
    RunRecorder recorder(opt, "fig05");

    for (const auto &name : names) {
        const auto data = loadDataset(name, opt);
        const NodeId n = data.adjacency.numRows();

        std::vector<std::unique_ptr<PimMxvKernel<IntPlusTimes>>>
            kernels;
        for (auto v : variants) {
            kernels.push_back(makeKernel<IntPlusTimes>(
                v, sys, data.adjacency, opt.dpus));
        }

        TextTable table(name + " (normalized to COO per density)");
        table.setHeader({"density", "variant", "load", "kernel",
                         "retrieve", "merge", "total"});
        for (unsigned di = 0; di < densities.size(); ++di) {
            const auto x = randomInputVector<std::uint32_t>(
                n, densities[di], opt.seed + di, 1u, 8u);
            double norm = 0.0;
            for (unsigned vi = 0; vi < variants.size(); ++vi) {
                recorder.begin();
                const auto r = kernels[vi]->run(x);
                recorder.emit(
                    name,
                    std::string(kernelVariantName(variants[vi])) +
                        "/d" + TextTable::num(densities[di], 2),
                    r.times, &r.profile, 1);
                if (vi == 0)
                    norm = r.times.total();
                auto cells = phaseCells(r.times, norm);
                cells.insert(cells.begin(),
                             {TextTable::pct(densities[di], 0),
                              kernelVariantName(variants[vi])});
                table.addRow(cells);
                ratios[{vi, di}].push_back(r.times.total() / norm);
            }
            table.addSeparator();
        }
        table.print();
        std::printf("\n");
    }

    TextTable geo("geometric mean of totals across datasets "
                  "(normalized to COO)");
    geo.setHeader({"variant", "1%", "10%", "50%"});
    for (unsigned vi = 0; vi < variants.size(); ++vi) {
        geo.addRow({kernelVariantName(variants[vi]),
                    TextTable::num(geometricMean(ratios[{vi, 0}]), 3),
                    TextTable::num(geometricMean(ratios[{vi, 1}]), 3),
                    TextTable::num(geometricMean(ratios[{vi, 2}]),
                                   3)});
    }
    geo.print();

    // ---- Section 6.1 note: CSR slowdown on small datasets ----
    std::printf("\n");
    TextTable csr("CSR slowdown vs the best non-CSR SpMSpV "
                  "(section 6.1 note; medium datasets, where the "
                  "per-row rescan dominates)");
    csr.setHeader({"density", "geomean slowdown", "paper"});
    const std::vector<std::string> small = {"e-En", "s-S11", "loc-b"};
    const std::vector<const char *> paper = {"2.8x", "12.68x",
                                             "25.23x"};
    for (unsigned di = 0; di < densities.size(); ++di) {
        std::vector<double> slowdowns;
        for (const auto &name : small) {
            const auto data = loadDataset(name, opt);
            const NodeId n = data.adjacency.numRows();
            const auto x = randomInputVector<std::uint32_t>(
                n, densities[di], opt.seed + di, 1u, 8u);
            const auto csr_kernel = makeKernel<IntPlusTimes>(
                KernelVariant::SpmspvCsr, sys, data.adjacency,
                opt.dpus);
            const double csr_total =
                csr_kernel->run(x).times.total();
            double best = 1e30;
            for (auto v : variants) {
                const auto k = makeKernel<IntPlusTimes>(
                    v, sys, data.adjacency, opt.dpus);
                best = std::min(best, k->run(x).times.total());
            }
            slowdowns.push_back(csr_total / best);
        }
        csr.addRow({TextTable::pct(densities[di], 0),
                    TextTable::num(geometricMean(slowdowns), 2) + "x",
                    paper[di]});
    }
    csr.print();

    std::printf("\npaper expectation: CSC-2D best at >=10%% density; "
                "CSC-R/COO competitive below 10%%; CSR far worse, "
                "degrading with density\n");
    return writeTelemetryOutputs(opt);
}
