/**
 * @file
 * Road-network navigation scenario: single-source shortest paths on
 * a synthetic road network (the paper's r-TX / r-PA family). Shows
 * the regular-graph side of adaptive switching -- low, flat frontier
 * densities keep the engine on SpMSpV with an early (20%) switch
 * threshold -- and compares the PIM run against the CPU baseline.
 *
 * Usage: road_navigation [nodes] (default 20000)
 */

#include <cstdio>
#include <cstdlib>

#include "apps/graph_apps.hh"
#include "baseline/cpu_engine.hh"
#include "common/random.hh"
#include "common/table.hh"
#include "sparse/generators.hh"
#include "sparse/graph_stats.hh"

using namespace alphapim;

int
main(int argc, char **argv)
{
    const NodeId nodes =
        argc > 1 ? static_cast<NodeId>(std::atoi(argv[1])) : 20000;

    // A sqrt(n) x sqrt(n) street grid with ~1.4 roads per junction
    // and travel times of 1..9 minutes per segment.
    Rng rng(11);
    const auto edges = sparse::generateRoadLattice(
        nodes, static_cast<EdgeId>(nodes * 1.4), rng);
    const auto pattern = sparse::edgeListToSymmetricCoo(edges);
    const auto roads =
        sparse::assignSymmetricWeights(pattern, 1.0f, 9.0f, rng);
    const auto stats = sparse::computeGraphStats(roads);
    std::printf("road network: %u junctions, %llu segments, avg "
                "degree %.2f (std %.2f)\n",
                stats.nodes,
                static_cast<unsigned long long>(stats.edges),
                stats.avgDegree, stats.degreeStd);

    upmem::SystemConfig sys_cfg;
    sys_cfg.numDpus = 256;
    const upmem::UpmemSystem sys(sys_cfg);

    const NodeId depot = sparse::largestComponentVertex(roads);
    const auto pim = apps::runSssp(sys, roads, depot);

    // The decision tree should classify this as a regular graph and
    // pick the 20% switch threshold; road frontiers stay sparse, so
    // virtually every iteration runs SpMSpV.
    std::printf("\nPIM run: %zu iterations, %u SpMSpV / %u SpMV "
                "launches, total %.2f ms\n",
                pim.iterations.size(), pim.spmspvLaunches,
                pim.spmvLaunches, toMillis(pim.total.total()));
    double peak_density = 0.0;
    for (const auto &log : pim.iterations)
        peak_density = std::max(peak_density, log.inputDensity);
    std::printf("peak frontier density: %s (regular graphs stay "
                "sparse)\n",
                TextTable::pct(peak_density, 2).c_str());

    // CPU baseline comparison.
    const baseline::CpuEngine cpu(baseline::CpuSpec{}, roads);
    const auto cpu_run = cpu.sssp(depot);
    std::printf("\nGridGraph CPU model: %.2f ms over %u rounds\n",
                toMillis(cpu_run.seconds), cpu_run.iterations);
    std::printf("PIM kernel speedup vs CPU: %.1fx (total %.1fx)\n",
                cpu_run.seconds / pim.total.kernel,
                cpu_run.seconds / pim.total.total());

    // Sanity: distances agree.
    bool match = true;
    for (NodeId v = 0; v < stats.nodes; ++v) {
        const float a = pim.distances[v];
        const float b = cpu_run.distances[v];
        if (std::isinf(a) != std::isinf(b) ||
            (!std::isinf(a) && std::abs(a - b) > 1e-3)) {
            match = false;
            break;
        }
    }
    std::printf("distance check vs CPU engine: %s\n",
                match ? "OK" : "MISMATCH");

    // A few reachable destinations.
    TextTable table("sample routes from the depot");
    table.setHeader({"destination", "travel time"});
    unsigned shown = 0;
    for (NodeId v = 0; v < stats.nodes && shown < 5; v += stats.nodes / 7) {
        if (!std::isinf(pim.distances[v]) && v != depot) {
            table.addRow({std::to_string(v),
                          TextTable::num(pim.distances[v], 0) +
                              " min"});
            ++shown;
        }
    }
    table.print();
    return 0;
}
