/**
 * @file
 * Quickstart: build a small graph, run BFS on the simulated UPMEM
 * PIM system with adaptive kernel switching, and inspect the phase
 * breakdown -- the five-minute tour of the ALPHA-PIM API.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "apps/graph_apps.hh"
#include "apps/reference_algorithms.hh"
#include "common/random.hh"
#include "common/table.hh"
#include "sparse/generators.hh"
#include "sparse/graph_stats.hh"

using namespace alphapim;

int
main()
{
    // 1. Make a graph. Generators cover the paper's dataset
    //    families; readMatrixMarketFile() loads real graphs.
    Rng rng(7);
    const auto edges = sparse::generateScaleMatched(
        /*n=*/5000, /*avg_degree=*/8.0, /*degree_std=*/25.0, rng);
    const auto adjacency = sparse::edgeListToSymmetricCoo(edges);
    const auto stats = sparse::computeGraphStats(adjacency);
    std::printf("graph: %u vertices, %llu edges, avg degree %.2f "
                "(std %.2f)\n",
                stats.nodes,
                static_cast<unsigned long long>(stats.edges),
                stats.avgDegree, stats.degreeStd);

    // 2. Configure the simulated UPMEM machine.
    upmem::SystemConfig sys_cfg;
    sys_cfg.numDpus = 256;
    const upmem::UpmemSystem sys(sys_cfg);

    // 3. Run BFS. The adaptive engine classifies the graph with the
    //    decision-tree model and switches SpMSpV -> SpMV when the
    //    frontier density crosses the learned threshold.
    const NodeId source =
        sparse::largestComponentVertex(adjacency);
    const auto result = apps::runBfs(sys, adjacency, source);

    // 4. Validate against the host reference.
    const auto expected = apps::referenceBfs(adjacency, source);
    std::printf("result check: %s\n",
                result.levels == expected ? "OK" : "MISMATCH");

    // 5. Inspect per-iteration behaviour.
    TextTable table("BFS per-iteration breakdown");
    table.setHeader({"iter", "frontier density", "kernel", "total ms"});
    for (const auto &log : result.iterations) {
        table.addRow({std::to_string(log.iteration),
                      TextTable::pct(log.inputDensity, 2),
                      log.usedSpmv ? "SpMV" : "SpMSpV",
                      TextTable::num(toMillis(log.times.total()), 3)});
    }
    table.print();

    std::printf(
        "\ntotals: load %.2f ms | kernel %.2f ms | retrieve %.2f ms "
        "| merge %.2f ms\n",
        toMillis(result.total.load), toMillis(result.total.kernel),
        toMillis(result.total.retrieve),
        toMillis(result.total.merge));
    std::printf("DPU pipeline: %.1f%% issued, %.2f avg active "
                "tasklets\n",
                100.0 * result.profile.aggregate.issuedFraction(),
                result.profile.aggregate.avgActiveThreads());
    return 0;
}
