/**
 * @file
 * Social-network recommendation scenario: Personalized PageRank from
 * a user's vertex on a scale-free social graph (the paper's
 * soc-Slashdot / facebook family). Shows the float-heavy, kernel-
 * dominated side of the workload: software-emulated floating point
 * makes PPR's kernel share large, and the instruction mix is
 * dominated by arithmetic (paper sections 6.3.1 / 6.4.2).
 */

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "apps/graph_apps.hh"
#include "common/random.hh"
#include "common/table.hh"
#include "sparse/generators.hh"
#include "sparse/graph_stats.hh"

using namespace alphapim;

int
main()
{
    // A scale-free "who follows whom" network.
    Rng rng(23);
    const auto edges = sparse::generateScaleMatched(
        /*n=*/8000, /*avg_degree=*/12.0, /*degree_std=*/40.0, rng);
    const auto network = sparse::edgeListToSymmetricCoo(edges);
    const auto stats = sparse::computeGraphStats(network);
    std::printf("social graph: %u users, %llu follow edges, degree "
                "%.1f +/- %.1f\n",
                stats.nodes,
                static_cast<unsigned long long>(stats.edges),
                stats.avgDegree, stats.degreeStd);

    upmem::SystemConfig sys_cfg;
    sys_cfg.numDpus = 256;
    const upmem::UpmemSystem sys(sys_cfg);

    const NodeId user = sparse::largestComponentVertex(network);
    apps::AppConfig cfg;
    cfg.pprIterations = 20;
    cfg.pprTolerance = 1e-5;
    const auto result = apps::runPpr(sys, network, user, cfg);

    // Top recommendations: highest-rank vertices excluding the user.
    std::vector<NodeId> order(stats.nodes);
    std::iota(order.begin(), order.end(), 0);
    std::partial_sort(
        order.begin(), order.begin() + 9, order.end(),
        [&](NodeId a, NodeId b) {
            return result.ranks[a] > result.ranks[b];
        });

    TextTable table("top personalized recommendations for user " +
                    std::to_string(user));
    table.setHeader({"rank", "user", "PPR score"});
    unsigned shown = 0;
    for (NodeId v : order) {
        if (v == user)
            continue;
        table.addRow({std::to_string(shown + 1), std::to_string(v),
                      TextTable::num(result.ranks[v], 6)});
        if (++shown == 8)
            break;
    }
    table.print();

    // The PPR-specific characterization story.
    const auto &p = result.profile.aggregate;
    const double total_instr =
        static_cast<double>(p.totalInstructions());
    const double float_share =
        static_cast<double>(
            p.instrByClass[static_cast<std::size_t>(
                upmem::OpClass::FloatAdd)] +
            p.instrByClass[static_cast<std::size_t>(
                upmem::OpClass::FloatMul)]) /
        total_instr;
    std::printf("\n%zu power iterations (%s), %.2f ms total\n",
                result.iterations.size(),
                result.converged ? "converged" : "iteration cap",
                toMillis(result.total.total()));
    std::printf("kernel share of total: %.0f%% (PPR is "
                "kernel-dominated: software floats)\n",
                100.0 * result.total.kernel /
                    result.total.total());
    std::printf("emulated float instructions: %.0f%% of the "
                "dynamic mix\n",
                100.0 * float_share);
    std::printf("SpMSpV launches %u, SpMV launches %u (rank vector "
                "densifies quickly)\n",
                result.spmspvLaunches, result.spmvLaunches);
    return 0;
}
