/**
 * @file
 * Design-space exploration scenario: sweep every SpMSpV/SpMV kernel
 * variant and DPU count on one graph and print the Load / Kernel /
 * Retrieve / Merge breakdown -- the workflow behind the paper's
 * "25x between best and worst strategy" observation, for users who
 * want to pick a partitioning for their own dataset.
 */

#include <cstdio>

#include "common/random.hh"
#include "common/table.hh"
#include "core/kernels.hh"
#include "sparse/generators.hh"

using namespace alphapim;
using namespace alphapim::core;

int
main()
{
    Rng rng(31);
    const auto edges =
        sparse::generateScaleMatched(6000, 10.0, 35.0, rng);
    const auto graph = sparse::edgeListToSymmetricCoo(edges);
    const NodeId n = graph.numRows();

    // A 10%-dense input vector: the regime where strategy choice
    // matters most.
    sparse::SparseVector<std::uint32_t> x(n);
    for (NodeId i = 0; i < n; ++i) {
        if (rng.nextBernoulli(0.10))
            x.append(i, 1u + static_cast<std::uint32_t>(
                                 rng.nextBounded(7)));
    }

    const KernelVariant variants[] = {
        KernelVariant::SpmspvCoo,  KernelVariant::SpmspvCsr,
        KernelVariant::SpmspvCscR, KernelVariant::SpmspvCscC,
        KernelVariant::SpmspvCsc2d, KernelVariant::SpmvCoo1d,
        KernelVariant::SpmvDcoo2d};

    for (unsigned dpus : {64u, 256u}) {
        upmem::SystemConfig sys_cfg;
        sys_cfg.numDpus = dpus;
        const upmem::UpmemSystem sys(sys_cfg);

        TextTable table("kernel design space at " +
                        std::to_string(dpus) +
                        " DPUs, 10% input density (ms)");
        table.setHeader({"variant", "load", "kernel", "retrieve",
                         "merge", "total", "vs best"});

        struct Row
        {
            const char *name;
            core::PhaseTimes times;
        };
        std::vector<Row> rows;
        double best = 1e30;
        for (auto v : variants) {
            const auto kernel =
                makeKernel<IntPlusTimes>(v, sys, graph, dpus);
            const auto r = kernel->run(x);
            rows.push_back({kernelVariantName(v), r.times});
            best = std::min(best, r.times.total());
        }
        for (const auto &row : rows) {
            table.addRow(
                {row.name, TextTable::num(toMillis(row.times.load), 3),
                 TextTable::num(toMillis(row.times.kernel), 3),
                 TextTable::num(toMillis(row.times.retrieve), 3),
                 TextTable::num(toMillis(row.times.merge), 3),
                 TextTable::num(toMillis(row.times.total()), 3),
                 TextTable::num(row.times.total() / best, 2) + "x"});
        }
        table.print();
        std::printf("\n");
    }

    std::printf("takeaway: pick the partitioning per dataset and "
                "density -- the paper measured up to 25x between "
                "best and worst\n");
    return 0;
}
